//! Cancellable discrete-event queue backed by a hierarchical timer wheel.
//!
//! The two-level scheduler simulation constantly arms timers that become
//! irrelevant before they fire: a vCPU's 30 ms slice-expiry timer dies when
//! the vCPU blocks early; a task's compute-completion event dies when its
//! vCPU is preempted. Rather than eagerly removing entries (O(n)),
//! [`EventQueue::cancel`] invalidates the entry's slab generation and later
//! drains lazily skip corpses.
//!
//! # Hot-path design
//!
//! `schedule`/`pop`/`peek` are the innermost loop of every simulation run.
//! Tickless profiling showed 83–88% of queued events are periodic timers
//! (`HvTick`/`HvAccounting`/guest CFS ticks) that previously paid an
//! O(log n) binary-heap sift on every schedule and pop. The queue is now a
//! **hierarchical timer wheel** (kernel `timer.c` style) that makes the
//! dominant event class O(1):
//!
//! * Sim time is bucketed into **ticks** of `2^TICK_SHIFT` ns (65.5 µs).
//!   Sub-tick ordering is preserved — ticks choose the *bucket*, the full
//!   `(SimTime, seq)` key still decides pop order within it.
//! * Four **levels × 256 slots** cover 32 bits of tick (~8.9 years of
//!   lookahead from the wheel cursor); level *l* slot *s* holds events
//!   whose tick agrees with the cursor on all bits above `8·(l+1)` and has
//!   `s` in bit field `[8·l, 8·(l+1))`. A per-level **occupancy bitmap**
//!   (four `u64` words) finds the next non-empty slot with a handful of
//!   `trailing_zeros` scans.
//! * Events beyond the top level's range go to an unordered **overflow
//!   list**, promoted wholesale when the wheel drains down to them.
//! * A sorted **head** vector (descending `(time, seq)`, popped from the
//!   back) holds every live event at or before the wheel **cursor**. The
//!   back of the head is kept live at all times, which is what lets
//!   [`EventQueue::peek_time`] / [`EventQueue::peek`] take `&self` and
//!   keeps [`EventQueue::pop_if`] race-free.
//!
//! The cursor only ever moves to the tick of the earliest pending event, so
//! a wheel slot is drained at most once per entry and cascading moves each
//! entry strictly downward: `schedule`, `cancel`, and `pop` are all O(1)
//! amortized. Pop order is **bit-identical** to the previous binary heap —
//! earliest `(time, insertion seq)` first — because every slot drain sorts
//! by the same total key the heap used.
//!
//! Liveness still rides on the **generation-tagged slab** (a plain
//! `Vec<u32>` plus a free list): an entry anywhere in the wheel is live iff
//! its recorded generation matches its slot's. Two complementary mechanisms
//! bound tombstone accumulation:
//!
//! * the head **back is always live** (dead backs are dropped eagerly by
//!   `cancel`/`pop`), and slot drains drop corpses on the floor;
//! * when dead entries outnumber live ones (and the population is
//!   non-trivial), the whole structure is **compacted** in O(n): live
//!   entries are retained in place, so a cancel-heavy run's memory stays
//!   proportional to the live event count.

use crate::time::SimTime;

/// Handle to a scheduled event, used for cancellation.
///
/// A handle encodes a slab slot and that slot's generation at scheduling
/// time. Slots are recycled, generations are not: every `(slot, generation)`
/// pair — and therefore every `EventId` value — is unique for the lifetime
/// of the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Raw id value (diagnostics only).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Wheel tick resolution: `2^16` ns = 65.5 µs per tick. One bottom-level
/// rotation then spans ~16.8 ms, so the dominant periodic timers (1 ms
/// guest ticks through the 10 ms `HvTick`) file directly into level 0 and
/// fire without a single cascade; profiling the scenario mix showed the
/// cascade rate, not slot-drain sort width, is what bounds throughput.
/// Sub-tick deadlines cost nothing in fidelity: the full `(SimTime, seq)`
/// key orders events within a bucket, ticks only pick the bucket.
const TICK_SHIFT: u32 = 16;
/// log2 of the slots per level. 8-bit levels are deliberately wider than
/// the classic 6: the simulator's dominant deltas (1 µs guest ticks to
/// 30 ms slice timers) then fit within two levels, so a timer is moved at
/// most twice before it fires — and every move of a cold entry is a cache
/// miss, which is what actually bounds drain throughput.
const LEVEL_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// `u64` words per level's occupancy bitmap.
const WORDS: usize = SLOTS / 64;
/// Levels in the hierarchy; together they cover `LEVELS * LEVEL_BITS` = 32
/// bits of tick (~8.9 years of sim time past the cursor). Anything farther
/// waits in the overflow list.
const LEVELS: usize = 4;
/// Bits of tick the wheel proper can express relative to the cursor.
const WHEEL_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// A wheel entry carrying its payload inline. No intrinsic ordering: slot
/// drains sort by the total key `(at, seq)` (`seq` is unique, so ties are
/// FIFO by schedule order, exactly as the old heap broke them).
#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
    payload: E,
}

/// A time-ordered queue of events with stable FIFO tie-breaking and O(1)
/// logical cancellation.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled, which gives the simulation a deterministic total order — a
/// prerequisite for the reproducibility guarantees in `DESIGN.md`.
///
/// # Example
///
/// ```
/// use irs_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(5), 'b');
/// q.schedule(SimTime::from_nanos(1), 'a');
/// q.schedule(SimTime::from_nanos(5), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
///
/// # Snapshots
///
/// `EventQueue<E: Clone>` is `Clone`, and the clone is a *complete* state
/// copy: slab generations, free list, sequence counter, cursor, occupancy
/// bitmaps, head batch, and overflow list all carry over. A clone is
/// therefore observationally identical to the original under every
/// subsequent operation sequence — pops return the same `(time, seq)`
/// order, new schedules receive the same `EventId`s, and handles issued
/// before the clone remain valid against it. This is the foundation of
/// `System::snapshot()` checkpointing (DESIGN.md §2.7). Handles issued
/// *after* the clone point belong to the timeline that issued them and
/// must not be used against the other copy.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Live-or-dead entries at or before the cursor, sorted by `(at, seq)`
    /// **descending** so the global minimum pops from the back in O(1).
    /// Invariant: the back is live whenever any live event exists.
    head: Vec<Entry<E>>,
    /// `LEVELS * SLOTS` buckets, level-major. Entries here are strictly
    /// after the cursor.
    wheel: Vec<Vec<Entry<E>>>,
    /// One occupancy bit per slot, per level.
    occ: [[u64; WORDS]; LEVELS],
    /// Events more than `2^WHEEL_BITS` ticks past the cursor's window.
    overflow: Vec<Entry<E>>,
    /// Current wheel position, in ticks. Only moves forward (except on
    /// `clear`), and only to the tick of the earliest pending event.
    cursor: u64,
    /// Generation per slab slot; an entry is live iff its recorded
    /// generation still matches its slot's.
    gens: Vec<u32>,
    /// Last wheel bucket each slab slot's entry was placed in — a *hint*,
    /// never trusted without checking the bucket's back entry. Lets
    /// `cancel` physically shed the dominant arm-then-disarm pattern (a
    /// slice timer cancelled right after scheduling) instead of cascading
    /// a corpse through two cold levels.
    hints: Vec<u32>,
    free: Vec<u32>,
    next_seq: u64,
    live: usize,
    /// Entries physically present (head + wheel + overflow), live or dead.
    physical: usize,
    /// Reused buffer for slot drains (avoids an alloc per cascade).
    scratch: Vec<Entry<E>>,
}

/// Compaction never triggers below this physical population; tiny queues
/// are cheaper to skip-scan than to rebuild.
const COMPACT_MIN: usize = 64;

/// Hint value for "not in a wheel bucket" (head, overflow, or popped).
const NO_HINT: u32 = u32::MAX;

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            head: Vec::new(),
            wheel: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [[0; WORDS]; LEVELS],
            overflow: Vec::new(),
            cursor: 0,
            gens: Vec::new(),
            hints: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            physical: 0,
            scratch: Vec::new(),
        }
    }

    #[inline]
    fn tick_of(at: SimTime) -> u64 {
        at.as_nanos() >> TICK_SHIFT
    }

    #[inline]
    fn is_live(&self, e: &Entry<E>) -> bool {
        self.gens[e.slot as usize] == e.gen
    }

    /// Schedules `payload` to fire at instant `at` and returns a handle that
    /// can later be passed to [`cancel`](Self::cancel).
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.gens.push(0);
                self.hints.push(NO_HINT);
                (self.gens.len() - 1) as u32
            }
        };
        let gen = self.gens[slot as usize];
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            at,
            seq,
            slot,
            gen,
            payload,
        };
        self.live += 1;
        self.physical += 1;
        if Self::tick_of(at) <= self.cursor {
            // At or before the wheel position: sorted insert into the head.
            // Rare (the cursor trails the minimum), and cheap when it does
            // happen because the head only holds the current tick's worth.
            self.insert_head(entry);
        } else {
            self.place(entry);
            if self.head.is_empty() {
                // The queue held no earlier event; pull the wheel forward so
                // `peek`/`pop` see this one without a mutable settle step.
                self.advance();
            }
        }
        EventId::new(slot, gen)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled. Cancellation bumps the slab
    /// generation (O(1)); the entry is discarded lazily by a later slot
    /// drain or compaction. The payload of a cancelled event is dropped at
    /// that later point, not here.
    #[inline]
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot();
        if self.gens.get(slot).copied() != Some(id.gen()) {
            return false;
        }
        self.gens[slot] = id.gen().wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        // Fast physical removal: if this slab slot's latest placement is
        // still the back of its hinted bucket, shed the corpse now. The
        // hint may be stale (the entry cascaded or fed the head), but the
        // back-entry slot check makes a stale hit impossible to confuse
        // with a live entry: anything matching `slot` is dead post-bump,
        // and bucket order is irrelevant, so dropping it is always sound.
        let b = self.hints[slot] as usize;
        if b < LEVELS * SLOTS
            && self.wheel[b].last().is_some_and(|e| e.slot as usize == slot)
        {
            self.wheel[b].pop();
            self.physical -= 1;
            if self.wheel[b].is_empty() {
                let s = b % SLOTS;
                self.occ[b / SLOTS][s >> 6] &= !(1u64 << (s & 63));
            }
        }
        self.settle();
        self.maybe_compact();
        true
    }

    /// Removes and returns the earliest live event as `(time, payload)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The head back is always live (see `settle`), so this never skips.
        let entry = self.head.pop()?;
        debug_assert_eq!(self.gens[entry.slot as usize], entry.gen, "dead head back");
        self.gens[entry.slot as usize] = entry.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        self.physical -= 1;
        self.settle();
        Some((entry.at, entry.payload))
    }

    /// The firing time of the earliest live event, without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.head.last().map(|e| e.at)
    }

    /// Conditionally removes the earliest live event: `pred` inspects the
    /// head as `(time, &payload)` and the head is popped only when it
    /// returns `true`; otherwise the queue is left untouched and `None` is
    /// returned (also when empty).
    ///
    /// This is the coalesced-timer primitive behind tickless fast-forward:
    /// a driver loop repeatedly takes the head *only while* it can prove
    /// the event is a no-op (a quiescent periodic tick, a dead timer
    /// generation), and stops at the first event that needs real dispatch —
    /// without the classify-then-pop race a separate `peek`/`pop` pair
    /// would invite if the predicate and the pop disagreed on the head.
    pub fn pop_if(&mut self, pred: impl FnOnce(SimTime, &E) -> bool) -> Option<(SimTime, E)> {
        // The head back is always live, so the entry the predicate inspects
        // is exactly the entry `pop` would return.
        let back = self.head.last()?;
        if !pred(back.at, &back.payload) {
            return None;
        }
        self.pop()
    }

    /// The earliest live event as `(time, &payload)`, without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.head.last().map(|e| (e.at, &e.payload))
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of cancelled entries still physically present in the wheel
    /// (diagnostics; bounded at roughly the live count by compaction).
    pub fn tombstones(&self) -> usize {
        self.physical - self.live
    }

    /// Drops every pending event. Outstanding [`EventId`]s are invalidated:
    /// a later `cancel` with a pre-`clear` handle reports `false`.
    pub fn clear(&mut self) {
        self.head.clear();
        for l in 0..LEVELS {
            for w in 0..WORDS {
                let mut bits = self.occ[l][w];
                while bits != 0 {
                    let s = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.wheel[l * SLOTS + s].clear();
                }
                self.occ[l][w] = 0;
            }
        }
        self.overflow.clear();
        self.cursor = 0;
        self.physical = 0;
        self.free.clear();
        for (i, g) in self.gens.iter_mut().enumerate() {
            *g = g.wrapping_add(1);
            self.free.push(i as u32);
        }
        self.live = 0;
        // Every slot must re-enter the free list exactly once: a slot left
        // out is stranded forever, and a duplicated slot would alias two
        // live events on one generation counter — letting a single stale
        // handle cancel the wrong post-clear event.
        debug_assert_eq!(self.free.len(), self.gens.len());
        debug_assert!({
            let mut seen = vec![false; self.gens.len()];
            self.free
                .iter()
                .all(|&s| !std::mem::replace(&mut seen[s as usize], true))
        });
    }

    /// Sorted insert into the descending head. O(log n) search plus the
    /// memmove; only taken for schedules at or before the cursor.
    fn insert_head(&mut self, e: Entry<E>) {
        let key = (e.at, e.seq);
        let i = self.head.partition_point(|x| (x.at, x.seq) > key);
        self.head.insert(i, e);
    }

    /// Files an entry strictly after the cursor into the shallowest level
    /// whose window contains it, or the overflow list. O(1): the target
    /// level is the 6-bit field holding the highest bit where the tick and
    /// the cursor differ, found with a single `leading_zeros`.
    #[inline]
    fn place(&mut self, e: Entry<E>) {
        let t = Self::tick_of(e.at);
        if t <= self.cursor {
            // At or before the wheel position. The level computation below
            // is only defined for strictly-future ticks (`t == cursor`
            // underflows the `63 - leading_zeros` shift; `t < cursor` picks
            // a level from bits the cursor has already swept), so such
            // entries belong in the head batch, same as `schedule`'s own
            // at-or-before-cursor path. Both in-tree callers pre-filter
            // this case — `schedule` into `insert_head`, `route` into
            // `scratch` — so this arm is defensive, but it must be correct
            // rather than an assert: an at-cursor tick is a legitimate
            // instant to schedule for.
            self.insert_head(e);
            return;
        }
        let l = ((63 - (t ^ self.cursor).leading_zeros()) / LEVEL_BITS) as usize;
        if l >= LEVELS {
            self.overflow.push(e);
            return;
        }
        let s = ((t >> (LEVEL_BITS * l as u32)) & SLOT_MASK) as usize;
        self.occ[l][s >> 6] |= 1 << (s & 63);
        self.hints[e.slot as usize] = (l * SLOTS + s) as u32;
        self.wheel[l * SLOTS + s].push(e);
    }

    /// Restores the invariant that the head back, if any live event exists,
    /// is live. Amortized O(1): every dropped corpse was pushed exactly
    /// once.
    #[inline]
    fn settle(&mut self) {
        while let Some(back) = self.head.last() {
            if self.is_live(back) {
                return;
            }
            self.head.pop();
            self.physical -= 1;
        }
        if self.live > 0 {
            self.advance();
        }
    }

    /// Moves the cursor forward to the earliest pending event and drains
    /// its slot into the head. Precondition: the head is empty and a live
    /// event exists somewhere in the wheel or overflow.
    ///
    /// Each iteration either drains the lowest occupied slot (cascading
    /// upper-level entries strictly downward) or promotes the nearest
    /// overflow window into the wheel, so every entry is touched at most
    /// `LEVELS + 1` times over its life — O(1) amortized.
    fn advance(&mut self) {
        debug_assert!(self.head.is_empty() && self.live > 0);
        while self.head.is_empty() {
            // The lowest occupied slot of the lowest occupied level is the
            // earliest window with pending entries (lower levels sit
            // strictly before higher ones relative to the cursor).
            let mut next = None;
            'scan: for l in 0..LEVELS {
                for w in 0..WORDS {
                    let bits = self.occ[l][w];
                    if bits != 0 {
                        next = Some((l, w * 64 + bits.trailing_zeros() as usize));
                        break 'scan;
                    }
                }
            }
            if let Some((l, s)) = next {
                let s = s as u64;
                let window = LEVEL_BITS * (l as u32 + 1);
                let base = LEVEL_BITS * l as u32;
                self.cursor = ((self.cursor >> window) << window) | (s << base);
                self.occ[l][(s as usize) >> 6] &= !(1u64 << (s & 63));
                let mut drained = std::mem::take(&mut self.wheel[l * SLOTS + s as usize]);
                for e in drained.drain(..) {
                    self.route(e);
                }
                // Hand the (now empty) bucket back so its capacity is
                // recycled next rotation.
                self.wheel[l * SLOTS + s as usize] = drained;
            } else {
                // The wheel proper is empty: promote the nearest overflow
                // window, shedding corpses while we scan.
                let mut alive = std::mem::take(&mut self.overflow);
                let before = alive.len();
                let gens = &self.gens;
                alive.retain(|e| gens[e.slot as usize] == e.gen);
                self.physical -= before - alive.len();
                debug_assert!(!alive.is_empty(), "live count says an event exists");
                let w = alive
                    .iter()
                    .map(|e| Self::tick_of(e.at) >> WHEEL_BITS)
                    .min()
                    .unwrap();
                self.cursor = w << WHEEL_BITS;
                for e in alive {
                    if Self::tick_of(e.at) >> WHEEL_BITS == w {
                        self.route(e);
                    } else {
                        self.overflow.push(e);
                    }
                }
            }
            self.flush_scratch();
        }
    }

    /// Re-files one drained entry: entries at or before the (just
    /// advanced) cursor collect in `scratch` for a batch head merge, later
    /// entries cascade into a strictly lower level. Liveness is only
    /// checked on the head feed — a corpse cascading one level further is
    /// a 32-byte sequential copy, cheaper than the cold random `gens` read
    /// that would prove it dead early.
    #[inline]
    fn route(&mut self, e: Entry<E>) {
        if Self::tick_of(e.at) <= self.cursor {
            if !self.is_live(&e) {
                self.physical -= 1;
                return;
            }
            self.scratch.push(e);
        } else {
            self.place(e);
        }
    }

    /// Sorts the routed batch by the global key and installs it as the new
    /// head. One O(k log k) sort per drained slot replaces k heap sifts,
    /// and the batch is all-live by construction.
    fn flush_scratch(&mut self) {
        if self.scratch.is_empty() {
            return;
        }
        debug_assert!(self.head.is_empty(), "batch feed requires an empty head");
        self.scratch
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        self.head.append(&mut self.scratch);
    }

    /// Rebuilds every bucket without tombstones once they outnumber live
    /// entries, keeping memory and drain cost proportional to live events.
    fn maybe_compact(&mut self) {
        if self.physical < COMPACT_MIN || self.physical - self.live <= self.live {
            return;
        }
        let gens = &self.gens;
        self.head.retain(|e| gens[e.slot as usize] == e.gen);
        for l in 0..LEVELS {
            for w in 0..WORDS {
                let mut bits = self.occ[l][w];
                while bits != 0 {
                    let s = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let gens = &self.gens;
                    self.wheel[l * SLOTS + s].retain(|e| gens[e.slot as usize] == e.gen);
                    if self.wheel[l * SLOTS + s].is_empty() {
                        self.occ[l][w] &= !(1u64 << (s & 63));
                    }
                }
            }
        }
        let gens = &self.gens;
        self.overflow.retain(|e| gens[e.slot as usize] == e.gen);
        self.physical = self.live;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| q.pop().map(|(t, p)| (t.as_nanos(), p))).collect()
    }

    /// Nanosecond value whose tick (ns >> TICK_SHIFT) is exactly `t`.
    fn tick_ns(t: u64) -> u64 {
        t << TICK_SHIFT
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(drain(&mut q), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for v in 0..100u32 {
            q.schedule(SimTime::from_nanos(42), v);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(drain(&mut q), vec![(2, 2)]);
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 7);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 7)));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_of_reused_slot_does_not_kill_successor() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.cancel(a);
        // The slot is recycled with a fresh generation; the stale handle
        // must not affect the new occupant.
        let b = q.schedule(SimTime::from_nanos(2), 2);
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2), 2)));
        assert!(!q.cancel(b));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_is_shared_and_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(9), 'z');
        q.schedule(SimTime::from_nanos(3), 'a');
        let r = &q; // peek must work through a shared reference
        assert_eq!(r.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(r.peek(), Some((SimTime::from_nanos(3), &'a')));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 'a')));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(a), "pre-clear handles are invalidated");
        // The queue is fully usable after a clear.
        q.schedule(SimTime::from_nanos(3), 9);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 9)));
    }

    #[test]
    fn clear_then_reschedule_keeps_stale_handles_dead() {
        let mut q = EventQueue::new();
        let pre: Vec<_> = (0..8u32)
            .map(|i| q.schedule(SimTime::from_nanos(i as u64), i))
            .collect();
        // Mixed slot history through the clear: one slot already recycled
        // by pop, one by cancel, the rest still live.
        q.pop();
        assert!(q.cancel(pre[3]));
        q.clear();
        // Refill past the cleared population so every recycled slot (and a
        // few fresh ones) is re-occupied, in whatever order the free list
        // hands slots out.
        let post: Vec<_> = (0..12u32)
            .map(|i| q.schedule(SimTime::from_nanos(100 + i as u64), 100 + i))
            .collect();
        assert_eq!(q.len(), 12);
        for id in &pre {
            assert!(!q.cancel(*id), "stale pre-clear handle hit a recycled slot");
        }
        assert_eq!(q.len(), 12, "stale cancels must not remove anything");
        for id in &post {
            assert!(q.cancel(*id), "post-clear handles must stay valid");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.pop();
        let b = q.schedule(SimTime::from_nanos(1), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn compaction_bounds_tombstones() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..1000u32)
            .map(|i| q.schedule(SimTime::from_nanos(1000 + i as u64), i))
            .collect();
        // Cancel from the back so corpses pile up out of the head's reach
        // (the live back never exposes them to settle's eager drop).
        for id in ids.iter().skip(100).rev() {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 100);
        assert!(
            q.tombstones() <= 100,
            "compaction should cap tombstones at the live count, got {}",
            q.tombstones()
        );
        // Survivors drain in schedule order (their times are increasing).
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn small_queues_skip_compaction() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..16u32)
            .map(|i| q.schedule(SimTime::from_nanos(10 + i as u64), i))
            .collect();
        for id in ids.iter().skip(1).rev() {
            q.cancel(*id);
        }
        // Below COMPACT_MIN nothing forces a rebuild; correctness holds.
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn heavy_churn_reuses_slots() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            let ids: Vec<_> = (0..100u64)
                .map(|i| q.schedule(SimTime::from_nanos(round * 1000 + i), i))
                .collect();
            for (i, id) in ids.iter().enumerate() {
                if i % 2 == 0 {
                    assert!(q.cancel(*id));
                }
            }
            while q.pop().is_some() {}
        }
        // Slab never grew past one round's worth of concurrent events.
        assert!(q.gens.len() <= 100, "slab grew to {}", q.gens.len());
    }

    // ---- wheel-specific coverage ------------------------------------

    #[test]
    fn cascade_boundaries_preserve_order() {
        // One event on each side of every level boundary (2^8, 2^16, 2^24,
        // 2^32 ticks), plus ties straddling a slot edge: order must be the
        // plain (time, seq) total order regardless of which level each
        // entry started in.
        let mut q = EventQueue::new();
        let ticks = [
            (1 << 8) - 1,
            1 << 8,
            (1 << 8) + 1,
            (1 << 16) - 1,
            1 << 16,
            (1 << 16) + 1,
            (1 << 24) - 1,
            1 << 24,
            (1 << 24) + 1,
            (1u64 << 32) - 1,
            1 << 32,
            (1 << 32) + 1,
        ];
        // Schedule in reverse so the wheel can't rely on arrival order.
        for (i, &t) in ticks.iter().enumerate().rev() {
            q.schedule(SimTime::from_nanos(tick_ns(t)), i as u32);
        }
        let got = drain(&mut q);
        let want: Vec<(u64, u32)> = ticks
            .iter()
            .enumerate()
            .map(|(i, &t)| (tick_ns(t), i as u32))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn far_future_overflow_promotes() {
        // Events several full wheel ranges out must park in overflow and
        // come back in order, including two distinct far windows.
        let mut q = EventQueue::new();
        let far = tick_ns(3 << WHEEL_BITS);
        let farther = tick_ns(7 << WHEEL_BITS);
        q.schedule(SimTime::from_nanos(farther), 3);
        q.schedule(SimTime::from_nanos(far + 5), 2);
        q.schedule(SimTime::from_nanos(far), 1);
        q.schedule(SimTime::from_nanos(10), 0);
        assert_eq!(
            drain(&mut q),
            vec![(10, 0), (far, 1), (far + 5, 2), (farther, 3)]
        );
    }

    #[test]
    fn schedule_behind_cursor_pops_first() {
        // Popping a far event drags the cursor forward; a later schedule
        // at an earlier time must still pop before everything pending.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(tick_ns(5000)), 1);
        q.schedule(SimTime::from_nanos(tick_ns(9000)), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(tick_ns(5000)), 1)));
        // Cursor now sits at tick 9000's window; go back to tick 7.
        q.schedule(SimTime::from_nanos(tick_ns(7)), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(tick_ns(7))));
        assert_eq!(drain(&mut q), vec![(tick_ns(7), 3), (tick_ns(9000), 2)]);
    }

    #[test]
    fn cancel_inside_upper_level_is_shed_on_cascade() {
        // Cancel an entry parked in an upper level; the cascade that later
        // sweeps its slot must drop the corpse without disturbing order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(tick_ns(4100)), 0);
        let dead = q.schedule(SimTime::from_nanos(tick_ns(4200)), 1);
        q.schedule(SimTime::from_nanos(tick_ns(4300)), 2);
        assert!(q.cancel(dead));
        assert_eq!(q.len(), 2);
        assert_eq!(drain(&mut q), vec![(tick_ns(4100), 0), (tick_ns(4300), 2)]);
    }

    #[test]
    fn pop_if_across_slot_flush() {
        // pop_if must keep seeing the true head as draining crosses from
        // one slot's batch into the next (and refuse without popping).
        let mut q = EventQueue::new();
        for i in 0..4u32 {
            q.schedule(SimTime::from_nanos(tick_ns(10) + i as u64), i);
        }
        for i in 4..8u32 {
            q.schedule(SimTime::from_nanos(tick_ns(500) + i as u64), i);
        }
        // Drain the first slot entirely through pop_if...
        for i in 0..4u32 {
            let got = q.pop_if(|t, _| t.as_nanos() < tick_ns(11));
            assert_eq!(got.map(|(_, p)| p), Some(i));
        }
        // ...the next head now comes from a freshly flushed slot: a
        // rejecting predicate must leave it in place,
        assert_eq!(q.pop_if(|t, _| t.as_nanos() < tick_ns(11)), None);
        assert_eq!(q.len(), 4);
        // and an accepting one must take it in order.
        for i in 4..8u32 {
            let got = q.pop_if(|t, _| t.as_nanos() < tick_ns(501));
            assert_eq!(got.map(|(_, p)| p), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_at_pop_time_fires_immediately() {
        // The "now" of a driver loop: after popping an event, scheduling
        // another at exactly the popped instant (the cursor's own tick)
        // must neither abort nor mis-file — it is simply the next head.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(tick_ns(100)), 1);
        q.schedule(SimTime::from_nanos(tick_ns(200)), 2);
        let (t, p) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), p), (tick_ns(100), 1));
        q.schedule(t, 3);
        assert_eq!(q.peek_time(), Some(t));
        assert_eq!(drain(&mut q), vec![(tick_ns(100), 3), (tick_ns(200), 2)]);
    }

    /// Slab-allocates like `schedule` but hands the entry straight to
    /// `place`, bypassing `schedule`'s own at-or-before-cursor pre-filter —
    /// this is the only way to pin `place`'s defensive head arm directly.
    fn raw_place(q: &mut EventQueue<u32>, at: SimTime, payload: u32) {
        let slot = match q.free.pop() {
            Some(s) => s,
            None => {
                q.gens.push(0);
                q.hints.push(NO_HINT);
                (q.gens.len() - 1) as u32
            }
        };
        let gen = q.gens[slot as usize];
        let seq = q.next_seq;
        q.next_seq += 1;
        q.live += 1;
        q.physical += 1;
        q.place(Entry {
            at,
            seq,
            slot,
            gen,
            payload,
        });
    }

    #[test]
    fn place_at_or_before_cursor_routes_to_head() {
        // Regression: `place` used to carry
        // `debug_assert!(t > self.cursor)` and an at-cursor tick underflowed
        // the level computation (63 - 64 leading_zeros) — aborting in debug
        // and filing into a garbage level in release. Both the `t == cursor`
        // and `t < cursor` cases must land in the head and pop in order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(tick_ns(5000)), 0);
        q.schedule(SimTime::from_nanos(tick_ns(9000) + 10), 4);
        q.pop(); // drags the cursor to tick 9000
        assert_eq!(q.cursor, 9000);
        raw_place(&mut q, SimTime::from_nanos(tick_ns(9000)), 3); // t == cursor
        raw_place(&mut q, SimTime::from_nanos(tick_ns(7)), 2); // t < cursor
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(tick_ns(7))));
        assert_eq!(
            drain(&mut q),
            vec![(tick_ns(7), 2), (tick_ns(9000), 3), (tick_ns(9000) + 10, 4)]
        );
    }

    #[test]
    fn clone_is_observationally_identical() {
        // A cloned queue must behave exactly like the original: same drain
        // order, same handle validity, same ids for post-clone schedules.
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..50u32)
            .map(|i| q.schedule(SimTime::from_nanos(tick_ns((i as u64 * 37) % 97) + i as u64), i))
            .collect();
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
        }
        q.pop();
        let mut c = q.clone();
        // Pre-clone handles work against the clone...
        assert_eq!(q.cancel(ids[4]), c.cancel(ids[4]));
        // ...post-clone schedules mint identical ids on both timelines...
        let a = q.schedule(SimTime::from_nanos(5), 999);
        let b = c.schedule(SimTime::from_nanos(5), 999);
        assert_eq!(a, b);
        // ...and the drains agree element for element.
        assert_eq!(drain(&mut q), drain(&mut c));
    }

    #[test]
    fn interleaved_pop_and_schedule_tracks_cursor() {
        // A periodic-timer-like workload: every pop schedules the next
        // beat; the cursor chases the minimum without ever skipping.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(0), 0u32);
        let mut fired = Vec::new();
        while let Some((t, p)) = q.pop() {
            fired.push((t.as_nanos(), p));
            if p < 20 {
                // 1 ms beats: crosses level-0 windows every time.
                q.schedule(SimTime::from_nanos(t.as_nanos() + 1_000_000), p + 1);
            }
        }
        let want: Vec<(u64, u32)> = (0..=20).map(|i| (i as u64 * 1_000_000, i)).collect();
        assert_eq!(fired, want);
    }
}
