//! # irs-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the lowest substrate of the `irs-sched` reproduction of
//! *Scheduler Activations for Interference-Resilient SMP Virtual Machine
//! Scheduling* (Middleware '17). The paper's evaluation runs on a physical
//! Xen testbed; we reproduce the two-level scheduling dynamics on a
//! discrete-event simulator instead, so every higher layer (the Xen-like
//! hypervisor, the Linux-like guest, the workloads) needs a common notion of
//! **virtual time**, an **event queue** that supports cheap logical
//! cancellation, and **seeded randomness** so that every experiment is
//! exactly reproducible.
//!
//! The kernel is intentionally tiny and allocation-light:
//!
//! * [`SimTime`] — a nanosecond-resolution instant on the virtual timeline.
//! * [`EventQueue`] — a monotonic priority queue of `(SimTime, payload)`
//!   entries with stable FIFO ordering for simultaneous events and O(1)
//!   logical cancellation via [`EventId`].
//! * [`SimRng`] — a small, fast, seedable RNG wrapper with the handful of
//!   distributions the workload models need.
//! * [`trace`] — an optional bounded in-memory trace ring used by tests and
//!   the debugging tooling.
//!
//! # Example
//!
//! ```
//! use irs_sim::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_millis(30), "slice expiry");
//! let cancel_me = q.schedule(SimTime::from_millis(10), "tick");
//! q.cancel(cancel_me);
//! let (at, what) = q.pop().expect("one live event");
//! assert_eq!(at, SimTime::from_millis(30));
//! assert_eq!(what, "slice expiry");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod rng;
mod time;
pub mod trace;

pub use event::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::SimTime;
