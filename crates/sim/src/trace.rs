//! Bounded in-memory trace ring.
//!
//! Scheduler bugs are interleaving bugs; a printf is useless without the
//! virtual timestamp and the last few hundred decisions that led up to the
//! failure. [`TraceRing`] keeps a bounded window of `(time, message)` records
//! that tests and the `figures` binary can dump when an assertion trips.
//!
//! Tracing is entirely opt-in: a disabled ring ignores records at ~zero cost,
//! so production runs of the big parameter sweeps pay nothing.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One trace record: a timestamp, a static category, and a rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the event was recorded.
    pub at: SimTime,
    /// Category tag, e.g. `"xen.schedule"` or `"guest.migrate"`.
    pub category: &'static str,
    /// Rendered description of the event.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] {:<18} {}", self.at, self.category, self.message)
    }
}

/// A bounded ring buffer of trace records.
///
/// # Example
///
/// ```
/// use irs_sim::trace::TraceRing;
/// use irs_sim::SimTime;
///
/// let mut ring = TraceRing::enabled(2);
/// ring.record(SimTime::from_nanos(1), "test", || "first".to_string());
/// ring.record(SimTime::from_nanos(2), "test", || "second".to_string());
/// ring.record(SimTime::from_nanos(3), "test", || "third".to_string());
/// // capacity 2: the oldest record was evicted
/// assert_eq!(ring.records().len(), 2);
/// assert_eq!(ring.records()[0].message, "second");
/// ```
#[derive(Debug)]
pub struct TraceRing {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceRecord>,
}

impl TraceRing {
    /// Creates a disabled ring: every `record` call is a no-op.
    pub fn disabled() -> Self {
        TraceRing {
            enabled: false,
            capacity: 0,
            records: VecDeque::new(),
        }
    }

    /// Creates an enabled ring holding at most `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        TraceRing {
            enabled: true,
            capacity: capacity.max(1),
            records: VecDeque::with_capacity(capacity.clamp(1, 4096)),
        }
    }

    /// True if records are being captured.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event. The message closure only runs when tracing is
    /// enabled, so callers can interpolate freely without paying for it in
    /// disabled runs.
    #[inline]
    pub fn record<F>(&mut self, at: SimTime, category: &'static str, message: F)
    where
        F: FnOnce() -> String,
    {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord {
            at,
            category,
            message: message(),
        });
    }

    /// The captured records, oldest first.
    pub fn records(&self) -> &VecDeque<TraceRecord> {
        &self.records
    }

    /// Renders the whole ring, one record per line (newest last).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    /// Discards all captured records but keeps capture enabled/disabled state.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::disabled();
        ring.record(SimTime::ZERO, "x", || {
            panic!("message closure must not run when disabled")
        });
        assert!(ring.records().is_empty());
    }

    #[test]
    fn enabled_ring_keeps_newest() {
        let mut ring = TraceRing::enabled(3);
        for i in 0..10u64 {
            ring.record(SimTime::from_nanos(i), "t", || format!("m{i}"));
        }
        let msgs: Vec<&str> = ring.records().iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["m7", "m8", "m9"]);
    }

    #[test]
    fn capacity_zero_is_bumped_to_one() {
        let mut ring = TraceRing::enabled(0);
        ring.record(SimTime::ZERO, "t", || "only".to_string());
        ring.record(SimTime::ZERO, "t", || "survivor".to_string());
        assert_eq!(ring.records().len(), 1);
        assert_eq!(ring.records()[0].message, "survivor");
    }

    #[test]
    fn dump_is_line_per_record() {
        let mut ring = TraceRing::enabled(4);
        ring.record(SimTime::from_micros(26), "xen.sa", || "sent".to_string());
        ring.record(SimTime::from_millis(30), "xen.sched", || "switch".to_string());
        let dump = ring.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("xen.sa"));
        assert!(dump.contains("26.000us"));
    }

    #[test]
    fn clear_keeps_enabled() {
        let mut ring = TraceRing::enabled(4);
        ring.record(SimTime::ZERO, "t", || "a".to_string());
        ring.clear();
        assert!(ring.records().is_empty());
        assert!(ring.is_enabled());
    }
}
