//! Bounded in-memory trace ring over a typed scheduler event bus.
//!
//! Scheduler bugs are interleaving bugs; a printf is useless without the
//! virtual timestamp and the last few hundred decisions that led up to the
//! failure. [`TraceRing`] keeps a bounded window of [`TraceRecord`]s —
//! `(time, TraceEvent)` pairs — that the invariant sanitizer, tests, and the
//! `figures` binary can dump when an assertion trips.
//!
//! Events are *typed* ([`TraceEvent`]) rather than pre-rendered strings, so
//! the hot paths that emit them (hypervisor dispatch, guest context switch)
//! store a handful of plain integers per record; rendering happens only when
//! a dump is actually requested. The layers above `irs-sim` cannot be named
//! here (the crate DAG points the other way), so every variant carries plain
//! `usize`/`i64` indices and `&'static str` tags.
//!
//! Tracing is entirely opt-in: a disabled ring ignores records at ~zero cost,
//! so production runs of the big parameter sweeps pay nothing.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One typed scheduler event on the trace bus.
///
/// Variants mirror the decision points of the two stacked schedulers: the
/// `xen`-side ones are emitted by the hypervisor's credit scheduler and SA
/// protocol, the `guest`-side ones by the CFS model's context-switch and
/// migration choke points. [`TraceEvent::Note`] carries free-form rendered
/// text for callers that predate the typed bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A vCPU was dispatched onto a pCPU.
    Schedule {
        /// Physical CPU that starts running the vCPU.
        pcpu: usize,
        /// VM index of the dispatched vCPU.
        vm: usize,
        /// vCPU index within the VM.
        vcpu: usize,
        /// Why the scheduler ran (e.g. `"wake"`, `"slice-expiry"`).
        reason: &'static str,
    },
    /// A running vCPU was descheduled but still wants the CPU.
    Preempt {
        /// Physical CPU the vCPU was running on.
        pcpu: usize,
        /// VM index of the preempted vCPU.
        vm: usize,
        /// vCPU index within the VM.
        vcpu: usize,
    },
    /// A running vCPU voluntarily blocked (or went offline).
    Block {
        /// Physical CPU the vCPU was running on.
        pcpu: usize,
        /// VM index of the blocking vCPU.
        vm: usize,
        /// vCPU index within the VM.
        vcpu: usize,
    },
    /// A blocked vCPU woke and was enqueued on a pCPU's runqueue.
    Wake {
        /// VM index of the woken vCPU.
        vm: usize,
        /// vCPU index within the VM.
        vcpu: usize,
        /// Physical CPU whose runqueue received it.
        pcpu: usize,
    },
    /// The hypervisor sent a scheduler-activation upcall (`VIRQ_SA_UPCALL`).
    SaSend {
        /// VM index of the notified vCPU.
        vm: usize,
        /// vCPU index within the VM.
        vcpu: usize,
    },
    /// The guest acknowledged an SA upcall with a scheduling hypercall.
    SaAck {
        /// VM index of the acknowledging vCPU.
        vm: usize,
        /// vCPU index within the VM.
        vcpu: usize,
        /// The acknowledging operation, e.g. `"SCHEDOP_block"`.
        op: &'static str,
    },
    /// An SA upcall hit its completion limit and preemption was forced.
    SaTimeout {
        /// VM index of the vCPU that failed to acknowledge in time.
        vm: usize,
        /// vCPU index within the VM.
        vcpu: usize,
    },
    /// A periodic credit-scheduler tick burned credits of a running vCPU.
    CreditTick {
        /// VM index of the charged vCPU.
        vm: usize,
        /// vCPU index within the VM.
        vcpu: usize,
        /// Credits burned by this tick.
        burned: i64,
        /// Credit balance after the burn.
        credits: i64,
    },
    /// The guest OS put a task on a vCPU.
    TaskRun {
        /// VM index of the guest.
        vm: usize,
        /// vCPU the task starts running on.
        vcpu: usize,
        /// Guest task index.
        task: usize,
    },
    /// The guest OS took the current task off a vCPU.
    TaskStop {
        /// VM index of the guest.
        vm: usize,
        /// vCPU the task was running on.
        vcpu: usize,
        /// Guest task index.
        task: usize,
    },
    /// The guest OS migrated a queued task between vCPU runqueues.
    TaskMigrate {
        /// VM index of the guest.
        vm: usize,
        /// Guest task index.
        task: usize,
        /// Source vCPU runqueue.
        from: usize,
        /// Destination vCPU runqueue.
        to: usize,
    },
    /// A deterministic fault was injected into a guest-facing path
    /// (upcall loss, ack loss/delay, wedge onset, deadline jitter).
    FaultInjected {
        /// Which fault, e.g. `"upcall-loss"`, `"ack-drop"`, `"wedge"`.
        kind: &'static str,
        /// VM index of the affected vCPU.
        vm: usize,
        /// vCPU index within the VM.
        vcpu: usize,
    },
    /// A deterministic fault was injected on a host pCPU (e.g. a forced
    /// maintenance preemption modelling capacity degradation).
    PcpuFault {
        /// Which fault, e.g. `"degrade"`.
        kind: &'static str,
        /// The affected pCPU.
        pcpu: usize,
    },
    /// Free-form rendered text from a caller outside the typed bus.
    Note {
        /// Category tag, e.g. `"xen"` or `"guest"`.
        category: &'static str,
        /// Rendered description of the event.
        message: String,
    },
}

impl TraceEvent {
    /// Short static category tag used as the middle column of a dump line.
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::Schedule { .. } => "xen.schedule",
            TraceEvent::Preempt { .. } => "xen.preempt",
            TraceEvent::Block { .. } => "xen.block",
            TraceEvent::Wake { .. } => "xen.wake",
            TraceEvent::SaSend { .. } => "xen.sa",
            TraceEvent::SaAck { .. } => "xen.sa",
            TraceEvent::SaTimeout { .. } => "xen.sa",
            TraceEvent::CreditTick { .. } => "xen.credit",
            TraceEvent::TaskRun { .. } => "guest.run",
            TraceEvent::TaskStop { .. } => "guest.stop",
            TraceEvent::TaskMigrate { .. } => "guest.migrate",
            TraceEvent::FaultInjected { .. } => "fault.inject",
            TraceEvent::PcpuFault { .. } => "fault.pcpu",
            TraceEvent::Note { category, .. } => category,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Schedule {
                pcpu,
                vm,
                vcpu,
                reason,
            } => write!(f, "run vm{vm}.v{vcpu} on pcpu{pcpu} ({reason})"),
            TraceEvent::Preempt { pcpu, vm, vcpu } => {
                write!(f, "preempt vm{vm}.v{vcpu} off pcpu{pcpu} -> runnable")
            }
            TraceEvent::Block { pcpu, vm, vcpu } => {
                write!(f, "vm{vm}.v{vcpu} blocks off pcpu{pcpu}")
            }
            TraceEvent::Wake { vm, vcpu, pcpu } => {
                write!(f, "wake vm{vm}.v{vcpu} -> pcpu{pcpu} runqueue")
            }
            TraceEvent::SaSend { vm, vcpu } => {
                write!(f, "send VIRQ_SA_UPCALL to vm{vm}.v{vcpu}")
            }
            TraceEvent::SaAck { vm, vcpu, op } => {
                write!(f, "vm{vm}.v{vcpu} acks SA with {op}")
            }
            TraceEvent::SaTimeout { vm, vcpu } => {
                write!(f, "SA completion limit hit for vm{vm}.v{vcpu}; forcing preemption")
            }
            TraceEvent::CreditTick {
                vm,
                vcpu,
                burned,
                credits,
            } => write!(f, "tick burns {burned} credits of vm{vm}.v{vcpu} (now {credits})"),
            TraceEvent::TaskRun { vm, vcpu, task } => {
                write!(f, "vm{vm}: task{task} runs on v{vcpu}")
            }
            TraceEvent::TaskStop { vm, vcpu, task } => {
                write!(f, "vm{vm}: task{task} off v{vcpu}")
            }
            TraceEvent::TaskMigrate { vm, task, from, to } => {
                write!(f, "vm{vm}: migrate task{task} v{from} -> v{to}")
            }
            TraceEvent::FaultInjected { kind, vm, vcpu } => {
                write!(f, "inject {kind} on vm{vm}.v{vcpu}")
            }
            TraceEvent::PcpuFault { kind, pcpu } => {
                write!(f, "inject {kind} on pcpu{pcpu}")
            }
            TraceEvent::Note { message, .. } => f.write_str(message),
        }
    }
}

/// One trace record: a virtual timestamp and the typed event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the event was recorded.
    pub at: SimTime,
    /// The typed event.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<18} {}",
            self.at,
            self.event.category(),
            self.event
        )
    }
}

/// A bounded ring buffer of trace records.
///
/// # Example
///
/// ```
/// use irs_sim::trace::{TraceEvent, TraceRing};
/// use irs_sim::SimTime;
///
/// let mut ring = TraceRing::enabled(2);
/// ring.record(SimTime::from_nanos(1), "test", || "first".to_string());
/// ring.emit(SimTime::from_nanos(2), || TraceEvent::SaSend { vm: 0, vcpu: 1 });
/// ring.emit(SimTime::from_nanos(3), || TraceEvent::Wake { vm: 0, vcpu: 1, pcpu: 2 });
/// // capacity 2: the oldest record was evicted
/// assert_eq!(ring.records().len(), 2);
/// assert_eq!(ring.records()[0].event, TraceEvent::SaSend { vm: 0, vcpu: 1 });
/// ```
#[derive(Debug)]
pub struct TraceRing {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceRecord>,
}

/// Cloning a ring clones its *configuration* (enabled flag and capacity),
/// not its contents: the clone starts empty. Trace rings are observability,
/// not simulation state — the `System::snapshot()` machinery (DESIGN.md
/// §2.7) deliberately excludes captured records from checkpoints, and this
/// `Clone` is what encodes that at the type level. Structures that embed a
/// ring can simply `#[derive(Clone)]` and inherit the exclusion.
impl Clone for TraceRing {
    fn clone(&self) -> Self {
        if self.enabled {
            TraceRing::enabled(self.capacity)
        } else {
            TraceRing::disabled()
        }
    }
}

impl TraceRing {
    /// Creates a disabled ring: every `record`/`emit` call is a no-op.
    pub fn disabled() -> Self {
        TraceRing {
            enabled: false,
            capacity: 0,
            records: VecDeque::new(),
        }
    }

    /// Creates an enabled ring holding at most `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        TraceRing {
            enabled: true,
            capacity: capacity.max(1),
            records: VecDeque::with_capacity(capacity.clamp(1, 4096)),
        }
    }

    /// True if records are being captured.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits a typed event. The closure only runs when tracing is enabled,
    /// so hot paths pay nothing in disabled runs.
    #[inline]
    pub fn emit<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce() -> TraceEvent,
    {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord { at, event: event() });
    }

    /// Records a free-form [`TraceEvent::Note`]. The message closure only
    /// runs when tracing is enabled, so callers can interpolate freely
    /// without paying for it in disabled runs.
    #[inline]
    pub fn record<F>(&mut self, at: SimTime, category: &'static str, message: F)
    where
        F: FnOnce() -> String,
    {
        self.emit(at, || TraceEvent::Note {
            category,
            message: message(),
        });
    }

    /// The captured records, oldest first.
    pub fn records(&self) -> &VecDeque<TraceRecord> {
        &self.records
    }

    /// Renders the whole ring, one record per line (newest last).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    /// Discards all captured records but keeps capture enabled/disabled state.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(r: &TraceRecord) -> &str {
        match &r.event {
            TraceEvent::Note { message, .. } => message.as_str(),
            other => panic!("expected a note, got {other:?}"),
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::disabled();
        ring.record(SimTime::ZERO, "x", || {
            panic!("message closure must not run when disabled")
        });
        ring.emit(SimTime::ZERO, || {
            panic!("event closure must not run when disabled")
        });
        assert!(ring.records().is_empty());
    }

    #[test]
    fn enabled_ring_keeps_newest() {
        let mut ring = TraceRing::enabled(3);
        for i in 0..10u64 {
            ring.record(SimTime::from_nanos(i), "t", || format!("m{i}"));
        }
        let msgs: Vec<&str> = ring.records().iter().map(msg).collect();
        assert_eq!(msgs, vec!["m7", "m8", "m9"]);
    }

    #[test]
    fn capacity_zero_is_bumped_to_one() {
        let mut ring = TraceRing::enabled(0);
        ring.record(SimTime::ZERO, "t", || "only".to_string());
        ring.record(SimTime::ZERO, "t", || "survivor".to_string());
        assert_eq!(ring.records().len(), 1);
        assert_eq!(msg(&ring.records()[0]), "survivor");
    }

    #[test]
    fn dump_is_line_per_record() {
        let mut ring = TraceRing::enabled(4);
        ring.emit(SimTime::from_micros(26), || TraceEvent::SaSend { vm: 0, vcpu: 1 });
        ring.emit(SimTime::from_millis(30), || TraceEvent::Schedule {
            pcpu: 2,
            vm: 0,
            vcpu: 1,
            reason: "wake",
        });
        let dump = ring.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("xen.sa"));
        assert!(dump.contains("VIRQ_SA_UPCALL"));
        assert!(dump.contains("26.000us"));
        assert!(dump.contains("run vm0.v1 on pcpu2 (wake)"));
    }

    #[test]
    fn typed_events_render_with_category() {
        let mut ring = TraceRing::enabled(16);
        ring.emit(SimTime::from_micros(1), || TraceEvent::Preempt {
            pcpu: 0,
            vm: 1,
            vcpu: 2,
        });
        ring.emit(SimTime::from_micros(2), || TraceEvent::Block {
            pcpu: 0,
            vm: 1,
            vcpu: 2,
        });
        ring.emit(SimTime::from_micros(3), || TraceEvent::Wake {
            vm: 1,
            vcpu: 2,
            pcpu: 3,
        });
        ring.emit(SimTime::from_micros(4), || TraceEvent::SaAck {
            vm: 1,
            vcpu: 2,
            op: "SCHEDOP_block",
        });
        ring.emit(SimTime::from_micros(5), || TraceEvent::SaTimeout { vm: 1, vcpu: 2 });
        ring.emit(SimTime::from_micros(6), || TraceEvent::CreditTick {
            vm: 1,
            vcpu: 2,
            burned: 100,
            credits: 150,
        });
        ring.emit(SimTime::from_micros(7), || TraceEvent::TaskRun {
            vm: 1,
            vcpu: 2,
            task: 5,
        });
        ring.emit(SimTime::from_micros(8), || TraceEvent::TaskStop {
            vm: 1,
            vcpu: 2,
            task: 5,
        });
        ring.emit(SimTime::from_micros(9), || TraceEvent::TaskMigrate {
            vm: 1,
            task: 5,
            from: 2,
            to: 0,
        });
        ring.emit(SimTime::from_micros(10), || TraceEvent::FaultInjected {
            kind: "upcall-loss",
            vm: 1,
            vcpu: 2,
        });
        ring.emit(SimTime::from_micros(11), || TraceEvent::PcpuFault {
            kind: "degrade",
            pcpu: 3,
        });
        let dump = ring.dump();
        for needle in [
            "xen.preempt",
            "xen.block",
            "xen.wake",
            "SCHEDOP_block",
            "completion limit",
            "xen.credit",
            "guest.run",
            "guest.stop",
            "migrate task5 v2 -> v0",
            "fault.inject",
            "inject upcall-loss on vm1.v2",
            "fault.pcpu",
            "inject degrade on pcpu3",
        ] {
            assert!(dump.contains(needle), "dump missing {needle:?}:\n{dump}");
        }
    }

    #[test]
    fn clone_copies_config_not_contents() {
        let mut ring = TraceRing::enabled(3);
        ring.record(SimTime::ZERO, "t", || "a".to_string());
        let copy = ring.clone();
        assert!(copy.is_enabled());
        assert!(copy.records().is_empty(), "records are not state");
        assert!(!TraceRing::disabled().clone().is_enabled());
    }

    #[test]
    fn clear_keeps_enabled() {
        let mut ring = TraceRing::enabled(4);
        ring.record(SimTime::ZERO, "t", || "a".to_string());
        ring.clear();
        assert!(ring.records().is_empty());
        assert!(ring.is_enabled());
    }
}
