//! Virtual time.
//!
//! All schedulers in the reproduction reason in nanoseconds: the Xen credit
//! scheduler's 30 ms time slice, the guest's 1 ms tick, and the paper's
//! 20–26 µs scheduler-activation processing delay all need to coexist on one
//! timeline without losing resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on the virtual timeline, in nanoseconds since simulation start.
///
/// `SimTime` doubles as a duration type: the difference of two instants is
/// again a `SimTime`. This mirrors how scheduler code in Xen and Linux treats
/// `s_time_t` / `u64` nanoseconds and keeps arithmetic free of conversions.
///
/// # Example
///
/// ```
/// use irs_sim::SimTime;
///
/// let slice = SimTime::from_millis(30);
/// let tick = SimTime::from_millis(10);
/// assert_eq!(slice - tick, SimTime::from_millis(20));
/// assert_eq!(slice.as_micros(), 30_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the virtual timeline (also the zero duration).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond value.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value in seconds as a float (for reporting only — never for scheduling).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition; sticks at [`SimTime::MAX`] instead of wrapping.
    #[inline]
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction; clamps at [`SimTime::ZERO`].
    #[inline]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction: `None` if `rhs` is later than `self`.
    #[inline]
    pub const fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Multiplies a duration by an integer scale factor (saturating).
    #[inline]
    pub const fn scaled(self, factor: u64) -> SimTime {
        SimTime(self.0.saturating_mul(factor))
    }

    /// Multiplies a duration by a float factor, rounding to nearest ns.
    ///
    /// Used for cache-warmup penalties proportional to a workload's memory
    /// intensity. Negative factors clamp to zero.
    #[inline]
    pub fn scaled_f64(self, factor: f64) -> SimTime {
        if factor <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// Integer division of two durations (how many `rhs` fit in `self`).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn div_duration(self, rhs: SimTime) -> u64 {
        self.0 / rhs.0
    }

    /// Ratio of two durations as a float; `0.0` when `rhs` is zero.
    #[inline]
    pub fn ratio(self, rhs: SimTime) -> f64 {
        if rhs.0 == 0 {
            0.0
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }

    /// True if this is the zero instant / zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<u64> for SimTime {
    #[inline]
    fn from(ns: u64) -> Self {
        SimTime(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(30).as_micros(), 30_000);
        assert_eq!(SimTime::from_micros(26).as_nanos(), 26_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_millis(30);
        let b = SimTime::from_millis(10);
        assert_eq!(a + b, SimTime::from_millis(40));
        assert_eq!(a - b, SimTime::from_millis(20));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(40));
        c -= a;
        assert_eq!(c, b);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(SimTime::MAX.saturating_add(SimTime::from_nanos(1)), SimTime::MAX);
        assert_eq!(
            SimTime::from_nanos(5).saturating_sub(SimTime::from_nanos(9)),
            SimTime::ZERO
        );
    }

    #[test]
    fn checked_sub_detects_underflow() {
        assert_eq!(
            SimTime::from_nanos(5).checked_sub(SimTime::from_nanos(9)),
            None
        );
        assert_eq!(
            SimTime::from_nanos(9).checked_sub(SimTime::from_nanos(5)),
            Some(SimTime::from_nanos(4))
        );
    }

    #[test]
    fn scaled_f64_rounds_and_clamps() {
        assert_eq!(
            SimTime::from_nanos(100).scaled_f64(1.5),
            SimTime::from_nanos(150)
        );
        assert_eq!(SimTime::from_nanos(100).scaled_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn ratio_and_div() {
        assert_eq!(
            SimTime::from_millis(90).div_duration(SimTime::from_millis(30)),
            3
        );
        assert!((SimTime::from_millis(15).ratio(SimTime::from_millis(30)) - 0.5).abs() < 1e-12);
        assert_eq!(SimTime::from_millis(15).ratio(SimTime::ZERO), 0.0);
    }

    #[test]
    fn display_uses_human_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(26).to_string(), "26.000us");
        assert_eq!(SimTime::from_millis(30).to_string(), "30.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn min_max_order() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
