//! Property tests for the event queue: it must behave as a stable total
//! order over (time, insertion sequence), with cancellation removing exactly
//! the cancelled entries.

use irs_sim::{EventQueue, EventId, SimTime};
use proptest::prelude::*;

/// Reference model with the pre-refactor queue's observable semantics: a
/// flat list popped by minimum `(time, insertion sequence)`, with
/// cancellation removing exactly one pending entry. The real queue
/// (inline-payload heap + generation slab) must be indistinguishable
/// from this under any operation interleaving.
#[derive(Default, Clone)]
struct ModelQueue {
    pending: Vec<(u64, u64, u32)>, // (time, seq, payload)
    next_seq: u64,
}

impl ModelQueue {
    fn schedule(&mut self, at: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at, seq, payload));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|e| e.1 == seq) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let i = (0..self.pending.len()).min_by_key(|&i| (self.pending[i].0, self.pending[i].1))?;
        let (at, _, payload) = self.pending.remove(i);
        Some((at, payload))
    }

    fn peek_time(&self) -> Option<u64> {
        self.pending.iter().map(|e| e.0).min()
    }

    /// Reference semantics of the coalesced-timer primitive: inspect the
    /// head, pop it only if the predicate approves, never touch anything
    /// but the head.
    fn pop_if(&mut self, pred: impl FnOnce(u64, u32) -> bool) -> Option<(u64, u32)> {
        let i = (0..self.pending.len()).min_by_key(|&i| (self.pending[i].0, self.pending[i].1))?;
        let (at, _, payload) = self.pending[i];
        if !pred(at, payload) {
            return None;
        }
        self.pending.remove(i);
        Some((at, payload))
    }
}

/// One nanosecond-tick of the hierarchical wheel backing the queue
/// (`TICK_SHIFT = 16`). Kept in sync with `event.rs` by the tests
/// themselves: if the geometry changes, the boundary times below stop
/// being boundaries but remain valid (the model is geometry-agnostic).
const WHEEL_TICK: u64 = 1 << 16;

/// Times that stress the wheel geometry rather than a generic ordering
/// container: FIFO ties inside one tick, level-0 slot multiples, cascade
/// boundaries at every level edge (multiples of 2^8 / 2^16 / 2^24 ticks,
/// where a drained upper slot re-files into lower levels), the
/// just-before-boundary edges, and far-future times beyond the wheel's
/// 2^32-tick horizon that land in the overflow list and must be promoted
/// back when the cursor reaches their window.
fn wheel_time_strategy() -> impl Strategy<Value = u64> {
    // The first arm repeats to keep FIFO-tie density high (the vendored
    // prop_oneof! picks arms uniformly).
    prop_oneof![
        0u64..50,
        0u64..50,
        (0u64..64).prop_map(|k| k * WHEEL_TICK),
        (0u64..8).prop_map(|k| k * (WHEEL_TICK << 8)),
        (0u64..8).prop_map(|k| k * (WHEEL_TICK << 16)),
        (0u64..4).prop_map(|k| k * (WHEEL_TICK << 24)),
        (1u64..4).prop_map(|k| k * (WHEEL_TICK << 8) - 1),
        (1u64..4).prop_map(|k| k * (WHEEL_TICK << 32)),
    ]
}

/// One step of the equivalence-test interleaving: `(op, a, b)` where
/// `op` selects schedule/cancel/pop/peek/pop_if/clear/snapshot/restore
/// (clear deliberately rare — it appears at 1-in-24 so interleavings
/// still build up deep queues; snapshot and restore each land at 1-in-12
/// so a sequence routinely clones mid-cascade and rewinds across it),
/// `a` picks a schedule time (doubling as the pop_if time bound), and
/// `b` picks which outstanding handle a cancel targets (doubling as the
/// pop_if payload parity).
fn step_strategy() -> impl Strategy<Value = (u8, u64, u8)> {
    (0u8..24, wheel_time_strategy(), 0u8..255).prop_map(|(op, a, b)| {
        let op = match op {
            19 => 5,
            20 | 21 => 6,
            22 | 23 => 7,
            _ => op % 5,
        };
        (op, a, b)
    })
}

proptest! {
    /// The rewritten queue is observationally equivalent to the old
    /// semantics (time order + FIFO ties + cancellation) under arbitrary
    /// interleavings of schedule / cancel / pop / peek / clear.
    #[test]
    fn queue_matches_reference_model(ops in prop::collection::vec(step_strategy(), 1..400)) {
        let mut real = EventQueue::new();
        let mut model = ModelQueue::default();
        // Parallel vectors: handle i in one maps to handle i in the other.
        let mut real_ids: Vec<EventId> = Vec::new();
        let mut model_ids: Vec<u64> = Vec::new();
        // Snapshot for the snapshot/restore ops: a clone of the real queue
        // (the wheel's `Clone` is the snapshot primitive under test — slab,
        // generations, occupancy bitmaps, overflow list, cursor), the model
        // state, and the handle-vector length at snapshot time. Restore
        // truncates the handle vectors: handles minted after the snapshot
        // belong to the abandoned timeline.
        let mut snap: Option<(EventQueue<u32>, ModelQueue, usize, u32)> = None;
        let mut payload = 0u32;
        for (op, a, b) in ops {
            match op {
                0 => {
                    // Times repeat heavily (the strategy samples a small
                    // set per scale) to exercise FIFO ties at every level.
                    real_ids.push(real.schedule(SimTime::from_nanos(a), payload));
                    model_ids.push(model.schedule(a, payload));
                    payload += 1;
                }
                1 => {
                    if !real_ids.is_empty() {
                        // Deliberately includes already-cancelled/popped
                        // handles: outcomes must agree for those too.
                        let i = b as usize % real_ids.len();
                        prop_assert_eq!(real.cancel(real_ids[i]), model.cancel(model_ids[i]));
                    }
                }
                2 => {
                    let got = real.pop().map(|(t, p)| (t.as_nanos(), p));
                    prop_assert_eq!(got, model.pop());
                }
                3 => {
                    prop_assert_eq!(real.peek_time().map(|t| t.as_nanos()), model.peek_time());
                }
                4 => {
                    // The coalesced-timer primitive (tickless fast-forward
                    // drains no-op head events through this): a predicate
                    // over both time and payload, so accept and reject
                    // paths interleave with every other operation.
                    let parity = u32::from(b) % 2;
                    let got = real
                        .pop_if(|t, &p| t.as_nanos() <= a && p % 2 == parity)
                        .map(|(t, p)| (t.as_nanos(), p));
                    let want = model.pop_if(|t, p| t <= a && p % 2 == parity);
                    prop_assert_eq!(got, want);
                }
                5 => {
                    // Clear: both queues drop everything. The handle
                    // vectors are deliberately kept — later cancels with
                    // pre-clear handles must report false in both, even
                    // after the real queue recycles those slots.
                    real.clear();
                    model.pending.clear();
                }
                6 => {
                    // Snapshot: clone both queues at an arbitrary instant —
                    // mid-cascade, with overflow pending, with cancelled
                    // corpses still in slots. Overwrites any prior snapshot.
                    snap = Some((real.clone(), model.clone(), real_ids.len(), payload));
                }
                _ => {
                    // Restore: rewind to the snapshot (no-op when none was
                    // taken). From here the interleaving continues on the
                    // restored state, so cancel-then-cascade and far-future
                    // overflow promotion replay across the rewind — and the
                    // clone must behave identically to the original, not
                    // just render identically.
                    if let Some((r, m, keep, p)) = &snap {
                        real = r.clone();
                        model = m.clone();
                        real_ids.truncate(*keep);
                        model_ids.truncate(*keep);
                        payload = *p;
                    }
                }
            }
            prop_assert_eq!(real.len(), model.pending.len());
            prop_assert_eq!(real.is_empty(), model.pending.is_empty());
        }
        // Drain: the tails must match exactly.
        loop {
            let got = real.pop().map(|(t, p)| (t.as_nanos(), p));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}

proptest! {
    /// Popping yields events in nondecreasing time order, FIFO among ties —
    /// across wheel levels and the overflow list, not just within a slot.
    #[test]
    fn pop_order_is_total(times in prop::collection::vec(wheel_time_strategy(), 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort();
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, expected);
    }

    /// Cancelling a subset removes exactly that subset; everything else pops
    /// in order. With wheel-scale times this is the cancel-then-cascade
    /// property: a corpse cancelled in an upper level must never resurface
    /// when its slot is drained and re-filed downward.
    #[test]
    fn cancel_removes_exactly_the_cancelled(
        times in prop::collection::vec(wheel_time_strategy(), 1..200),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push((times[i], i));
            }
        }
        kept.sort();
        prop_assert_eq!(q.len(), kept.len());
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, kept);
    }

    /// Far-future events land in the overflow list (beyond the wheel's
    /// 2^32-tick horizon) and must be promoted back into the wheel in the
    /// right windows: interleaving near and far schedules with pops still
    /// yields the global (time, seq) order.
    #[test]
    fn far_future_overflow_promotes_in_order(
        near in prop::collection::vec(0u64..(WHEEL_TICK << 10), 1..40),
        far in prop::collection::vec(1u64..6, 1..20),
        pop_between in 0usize..20,
    ) {
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        let mut payload = 0usize;
        for &t in &near {
            q.schedule(SimTime::from_nanos(t), payload);
            expected.push((t, payload));
            payload += 1;
        }
        // Drain part of the near set first so the cursor has advanced by
        // the time the overflow entries are promoted.
        let mut got = Vec::new();
        for _ in 0..pop_between.min(near.len()) {
            let (t, p) = q.pop().unwrap();
            got.push((t.as_nanos(), p));
        }
        for &w in &far {
            // Strictly beyond the 2^32-tick lookahead from tick zero.
            let t = w * (WHEEL_TICK << 32) + w;
            q.schedule(SimTime::from_nanos(t), payload);
            expected.push((t, payload));
            payload += 1;
        }
        while let Some((t, p)) = q.pop() {
            got.push((t.as_nanos(), p));
        }
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// pop_if across a slot flush: a rejecting predicate must leave the
    /// head untouched even when answering required draining a fresh slot
    /// (or promoting overflow), and a later accepting pop_if must see the
    /// exact same head.
    #[test]
    fn pop_if_is_stable_across_slot_flush(
        times in prop::collection::vec(wheel_time_strategy(), 1..60),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort();
        for &(t, i) in &expected {
            // Reject first — forces the head feed (slot drain / overflow
            // promotion) without consuming.
            prop_assert_eq!(q.pop_if(|_, _| false), None);
            prop_assert_eq!(q.peek_time().map(|x| x.as_nanos()), Some(t));
            // Then accept: must be the identical entry.
            let got = q.pop_if(|at, &p| at.as_nanos() == t && p == i);
            prop_assert_eq!(got.map(|(at, p)| (at.as_nanos(), p)), Some((t, i)));
        }
        prop_assert!(q.is_empty());
    }

    /// peek_time always agrees with the next pop.
    #[test]
    fn peek_matches_pop(times in prop::collection::vec(0u64..100, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        while let Some(peeked) = q.peek_time() {
            let (popped, _) = q.pop().unwrap();
            prop_assert_eq!(peeked, popped);
        }
        prop_assert!(q.is_empty());
    }

    /// len is consistent under an arbitrary interleaving of operations.
    #[test]
    fn len_is_consistent(ops in prop::collection::vec(0u8..3, 1..300)) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        let mut expected_len = 0usize;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    ids.push(q.schedule(SimTime::from_nanos(i as u64 % 17), i));
                    expected_len += 1;
                }
                1 => {
                    if let Some(id) = ids.pop() {
                        if q.cancel(id) {
                            expected_len -= 1;
                        }
                    }
                }
                _ => {
                    if q.pop().is_some() {
                        expected_len -= 1;
                    }
                }
            }
            prop_assert_eq!(q.len(), expected_len);
        }
    }
}
