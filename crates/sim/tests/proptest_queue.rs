//! Property tests for the event queue: it must behave as a stable total
//! order over (time, insertion sequence), with cancellation removing exactly
//! the cancelled entries.

use irs_sim::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping yields events in nondecreasing time order, FIFO among ties.
    #[test]
    fn pop_order_is_total(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort();
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, expected);
    }

    /// Cancelling a subset removes exactly that subset; everything else pops
    /// in order.
    #[test]
    fn cancel_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..1_000, 1..200),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push((times[i], i));
            }
        }
        kept.sort();
        prop_assert_eq!(q.len(), kept.len());
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, kept);
    }

    /// peek_time always agrees with the next pop.
    #[test]
    fn peek_matches_pop(times in prop::collection::vec(0u64..100, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        while let Some(peeked) = q.peek_time() {
            let (popped, _) = q.pop().unwrap();
            prop_assert_eq!(peeked, popped);
        }
        prop_assert!(q.is_empty());
    }

    /// len is consistent under an arbitrary interleaving of operations.
    #[test]
    fn len_is_consistent(ops in prop::collection::vec(0u8..3, 1..300)) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        let mut expected_len = 0usize;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    ids.push(q.schedule(SimTime::from_nanos(i as u64 % 17), i));
                    expected_len += 1;
                }
                1 => {
                    if let Some(id) = ids.pop() {
                        if q.cancel(id) {
                            expected_len -= 1;
                        }
                    }
                }
                _ => {
                    if q.pop().is_some() {
                        expected_len -= 1;
                    }
                }
            }
            prop_assert_eq!(q.len(), expected_len);
        }
    }
}
