//! Property tests for the event queue: it must behave as a stable total
//! order over (time, insertion sequence), with cancellation removing exactly
//! the cancelled entries.

use irs_sim::{EventQueue, EventId, SimTime};
use proptest::prelude::*;

/// Reference model with the pre-refactor queue's observable semantics: a
/// flat list popped by minimum `(time, insertion sequence)`, with
/// cancellation removing exactly one pending entry. The real queue
/// (inline-payload heap + generation slab) must be indistinguishable
/// from this under any operation interleaving.
#[derive(Default)]
struct ModelQueue {
    pending: Vec<(u64, u64, u32)>, // (time, seq, payload)
    next_seq: u64,
}

impl ModelQueue {
    fn schedule(&mut self, at: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at, seq, payload));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|e| e.1 == seq) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let i = (0..self.pending.len()).min_by_key(|&i| (self.pending[i].0, self.pending[i].1))?;
        let (at, _, payload) = self.pending.remove(i);
        Some((at, payload))
    }

    fn peek_time(&self) -> Option<u64> {
        self.pending.iter().map(|e| e.0).min()
    }

    /// Reference semantics of the coalesced-timer primitive: inspect the
    /// head, pop it only if the predicate approves, never touch anything
    /// but the head.
    fn pop_if(&mut self, pred: impl FnOnce(u64, u32) -> bool) -> Option<(u64, u32)> {
        let i = (0..self.pending.len()).min_by_key(|&i| (self.pending[i].0, self.pending[i].1))?;
        let (at, _, payload) = self.pending[i];
        if !pred(at, payload) {
            return None;
        }
        self.pending.remove(i);
        Some((at, payload))
    }
}

/// One step of the equivalence-test interleaving: `(op, a, b)` where
/// `op` selects schedule/cancel/pop/peek/pop_if/clear (clear deliberately
/// rare — it appears at 1-in-20 so interleavings still build up deep
/// queues), `a` picks a time bucket (doubling as the pop_if time bound),
/// and `b` picks which outstanding handle a cancel targets (doubling as
/// the pop_if payload parity).
fn step_strategy() -> impl Strategy<Value = (u8, u64, u8)> {
    (0u8..20, 0u64..50, 0u8..255)
        .prop_map(|(op, a, b)| (if op == 19 { 5 } else { op % 5 }, a, b))
}

proptest! {
    /// The rewritten queue is observationally equivalent to the old
    /// semantics (time order + FIFO ties + cancellation) under arbitrary
    /// interleavings of schedule / cancel / pop / peek / clear.
    #[test]
    fn queue_matches_reference_model(ops in prop::collection::vec(step_strategy(), 1..400)) {
        let mut real = EventQueue::new();
        let mut model = ModelQueue::default();
        // Parallel vectors: handle i in one maps to handle i in the other.
        let mut real_ids: Vec<EventId> = Vec::new();
        let mut model_ids: Vec<u64> = Vec::new();
        let mut payload = 0u32;
        for (op, a, b) in ops {
            match op {
                0 => {
                    // Times repeat heavily (mod 50) to exercise FIFO ties.
                    real_ids.push(real.schedule(SimTime::from_nanos(a), payload));
                    model_ids.push(model.schedule(a, payload));
                    payload += 1;
                }
                1 => {
                    if !real_ids.is_empty() {
                        // Deliberately includes already-cancelled/popped
                        // handles: outcomes must agree for those too.
                        let i = b as usize % real_ids.len();
                        prop_assert_eq!(real.cancel(real_ids[i]), model.cancel(model_ids[i]));
                    }
                }
                2 => {
                    let got = real.pop().map(|(t, p)| (t.as_nanos(), p));
                    prop_assert_eq!(got, model.pop());
                }
                3 => {
                    prop_assert_eq!(real.peek_time().map(|t| t.as_nanos()), model.peek_time());
                }
                4 => {
                    // The coalesced-timer primitive (tickless fast-forward
                    // drains no-op head events through this): a predicate
                    // over both time and payload, so accept and reject
                    // paths interleave with every other operation.
                    let parity = u32::from(b) % 2;
                    let got = real
                        .pop_if(|t, &p| t.as_nanos() <= a && p % 2 == parity)
                        .map(|(t, p)| (t.as_nanos(), p));
                    let want = model.pop_if(|t, p| t <= a && p % 2 == parity);
                    prop_assert_eq!(got, want);
                }
                _ => {
                    // Clear: both queues drop everything. The handle
                    // vectors are deliberately kept — later cancels with
                    // pre-clear handles must report false in both, even
                    // after the real queue recycles those slots.
                    real.clear();
                    model.pending.clear();
                }
            }
            prop_assert_eq!(real.len(), model.pending.len());
            prop_assert_eq!(real.is_empty(), model.pending.is_empty());
        }
        // Drain: the tails must match exactly.
        loop {
            let got = real.pop().map(|(t, p)| (t.as_nanos(), p));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}

proptest! {
    /// Popping yields events in nondecreasing time order, FIFO among ties.
    #[test]
    fn pop_order_is_total(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort();
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, expected);
    }

    /// Cancelling a subset removes exactly that subset; everything else pops
    /// in order.
    #[test]
    fn cancel_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..1_000, 1..200),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push((times[i], i));
            }
        }
        kept.sort();
        prop_assert_eq!(q.len(), kept.len());
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, kept);
    }

    /// peek_time always agrees with the next pop.
    #[test]
    fn peek_matches_pop(times in prop::collection::vec(0u64..100, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        while let Some(peeked) = q.peek_time() {
            let (popped, _) = q.pop().unwrap();
            prop_assert_eq!(peeked, popped);
        }
        prop_assert!(q.is_empty());
    }

    /// len is consistent under an arbitrary interleaving of operations.
    #[test]
    fn len_is_consistent(ops in prop::collection::vec(0u8..3, 1..300)) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        let mut expected_len = 0usize;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    ids.push(q.schedule(SimTime::from_nanos(i as u64 % 17), i));
                    expected_len += 1;
                }
                1 => {
                    if let Some(id) = ids.pop() {
                        if q.cancel(id) {
                            expected_len -= 1;
                        }
                    }
                }
                _ => {
                    if q.pop().is_some() {
                        expected_len -= 1;
                    }
                }
            }
            prop_assert_eq!(q.len(), expected_len);
        }
    }
}
