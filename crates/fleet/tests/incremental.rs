//! Incremental-epoch parity contract: the campaign's incremental mode
//! (dirty-host carry-over + composition-keyed snapshot/result cache)
//! must produce SLO tables bit-identical to a full re-simulation — for
//! every policy in the spec, every adversary mix, every `jobs` value,
//! and with warmup sharing on or off — while actually eliding work, and
//! while its accounting decomposition stays exact even when the cache is
//! squeezed to nothing.

use irs_fleet::{
    run_campaign, AdversaryMix, CampaignSpec, FleetConfig, FleetReport, PlacementPolicy,
};
use irs_sim::SimTime;

/// Same shape as the determinism suite's fleet: small enough for
/// debug-build CI, churny enough that epochs have both clean hosts
/// (carry-over fires) and dirty ones (the cache fires).
fn spec(jobs: usize, share_warmup: bool, incremental: bool, cache_bytes: usize) -> CampaignSpec {
    CampaignSpec {
        fleet: FleetConfig {
            hosts: 8,
            host_pcpus: 4,
            tenant_vcpus: 2,
            overcommit: 1.5,
            epochs: 3,
            warmup: SimTime::from_millis(25),
            epoch_horizon: SimTime::from_millis(120),
            initial_tenants: 10,
            arrivals_per_epoch: 3,
            depart_chance: 0.5,
            seed: 7,
            jobs,
            share_warmup,
            incremental,
            cache_bytes,
        },
        policies: vec![
            PlacementPolicy::FirstFit,
            PlacementPolicy::WorstFit,
            PlacementPolicy::InterferenceAware,
        ],
        mixes: vec![AdversaryMix::CLEAN, AdversaryMix::BLEND],
        overcommit_sweep: vec![1.0, 2.0],
        assert_contract: false,
    }
}

fn rendered(report: &FleetReport) -> String {
    report
        .tables
        .iter()
        .map(|t| t.render())
        .collect::<Vec<_>>()
        .join("\n")
}

/// The logical-work counters every mode must agree on, plus the SLO
/// tables themselves.
fn assert_parity(full: &FleetReport, inc: &FleetReport, label: &str) {
    assert_eq!(
        rendered(full),
        rendered(inc),
        "SLO tables diverged under {label}"
    );
    assert_eq!(full.events, inc.events, "logical events diverged ({label})");
    assert_eq!(full.host_runs, inc.host_runs, "host runs diverged ({label})");
    assert_eq!(full.tenants_placed, inc.tenants_placed, "{label}");
    assert_eq!(full.tenants_rejected, inc.tenants_rejected, "{label}");
}

#[test]
fn incremental_matches_full_across_share_and_jobs() {
    let full = run_campaign(&spec(1, true, false, 64 << 20));
    assert_eq!(full.runs_elided, 0, "full mode must not elide");
    assert_eq!(full.hosts_carried, 0);
    for share_warmup in [true, false] {
        for jobs in [1, 2] {
            let inc = run_campaign(&spec(jobs, share_warmup, true, 64 << 20));
            let label = format!("share_warmup={share_warmup} jobs={jobs}");
            assert_parity(&full, &inc, &label);
            // Incremental mode must actually have skipped work: churn
            // leaves clean hosts (carry) and repeated compositions
            // (cache) in every one of these configurations.
            assert!(inc.runs_elided > 0, "nothing elided under {label}");
            assert!(inc.hosts_carried > 0, "no carry-over under {label}");
            assert!(inc.events_elided > 0, "no events elided under {label}");
            assert!(
                inc.cache.result_hits > 0,
                "cache never hit under {label}"
            );
            assert!(
                inc.runs_elided as usize <= inc.host_runs,
                "elided more runs than the logical grid has ({label})"
            );
            // The decomposition must stay within the logical volume.
            assert!(inc.fork_warmup_saved + inc.events_elided <= inc.events);
        }
    }
}

#[test]
fn incremental_counters_are_jobs_invariant() {
    let a = run_campaign(&spec(1, true, true, 64 << 20));
    let b = run_campaign(&spec(2, true, true, 64 << 20));
    assert_eq!(rendered(&a), rendered(&b));
    assert_eq!(a.fork_warmup_saved, b.fork_warmup_saved);
    assert_eq!(a.events_elided, b.events_elided);
    assert_eq!(a.runs_elided, b.runs_elided);
    assert_eq!(a.hosts_carried, b.hosts_carried);
    assert_eq!(a.cache, b.cache, "cache stats must be jobs-invariant");
    assert_eq!(
        a.accounting.render(),
        b.accounting.render(),
        "accounting table must be jobs-invariant"
    );
}

#[test]
fn eviction_under_pressure_keeps_parity() {
    let full = run_campaign(&spec(1, true, false, 64 << 20));
    // A 1-byte budget evicts every insertion straight back out: the
    // cache degrades to recompute-always, but dirty-host carry-over
    // still elides and the tables must not move.
    let squeezed = run_campaign(&spec(1, true, true, 1));
    assert_parity(&full, &squeezed, "cache_bytes=1");
    assert!(squeezed.cache.evictions > 0, "nothing was ever evicted");
    assert_eq!(
        squeezed.cache.resident_bytes, 0,
        "a 1-byte budget cannot keep entries resident"
    );
    assert!(squeezed.hosts_carried > 0, "carry must survive eviction");
    // With an effectively disabled cache nothing survives between calls,
    // so elision comes only from carry-over and within-call sharing.
    assert_eq!(squeezed.cache.result_hits, 0);
    assert_eq!(squeezed.cache.snapshot_hits, 0);
    assert!(squeezed.runs_elided >= squeezed.hosts_carried);
}

#[test]
fn accounting_table_decomposes_the_logical_volume() {
    let inc = run_campaign(&spec(1, true, true, 64 << 20));
    let t = &inc.accounting;
    let row = |name: &str| -> Vec<f64> {
        t.series_named(name)
            .unwrap_or_else(|| panic!("accounting row {name} missing"))
            .values()
    };
    let logical = row("events (logical)");
    let executed = row("events executed");
    let warmup = row("warmup saved");
    let elided = row("events elided");
    let runs = row("host runs");
    let runs_exec = row("runs executed");
    let runs_elided = row("runs elided");
    assert!(!logical.is_empty());
    for i in 0..logical.len() {
        assert_eq!(logical[i], executed[i] + warmup[i] + elided[i]);
        assert_eq!(runs[i], runs_exec[i] + runs_elided[i]);
    }
    // Column sums must equal the report-level totals.
    assert_eq!(logical.iter().sum::<f64>(), inc.events as f64);
    assert_eq!(warmup.iter().sum::<f64>(), inc.fork_warmup_saved as f64);
    assert_eq!(elided.iter().sum::<f64>(), inc.events_elided as f64);
    assert_eq!(runs.iter().sum::<f64>(), inc.host_runs as f64);
}
