//! Fleet-level determinism contract (the `crates/core/tests/fork.rs`
//! pattern, one layer up): the campaign's SLO tables must be
//! bit-identical across worker counts *and* across forked-warmup vs
//! from-scratch execution.

use irs_fleet::{
    run_campaign, AdversaryMix, CampaignSpec, FleetConfig, FleetReport, PlacementPolicy,
};
use irs_sim::SimTime;

/// A fleet small enough for debug-build CI but large enough to exercise
/// churn, rejection, adversaries, and composition grouping.
fn spec(jobs: usize, share_warmup: bool) -> CampaignSpec {
    CampaignSpec {
        fleet: FleetConfig {
            hosts: 8,
            host_pcpus: 4,
            tenant_vcpus: 2,
            overcommit: 1.5,
            epochs: 2,
            warmup: SimTime::from_millis(25),
            epoch_horizon: SimTime::from_millis(120),
            initial_tenants: 10,
            arrivals_per_epoch: 4,
            depart_chance: 0.5,
            seed: 7,
            jobs,
            share_warmup,
            // This suite pins the *full* (reference) execution paths;
            // tests/incremental.rs pins incremental-vs-full parity.
            incremental: false,
            cache_bytes: 64 << 20,
        },
        policies: vec![PlacementPolicy::FirstFit, PlacementPolicy::InterferenceAware],
        mixes: vec![AdversaryMix::BLEND],
        overcommit_sweep: vec![],
        // The contract is asserted by the full-size campaign; this fleet
        // is too small for stable percentiles.
        assert_contract: false,
    }
}

fn rendered(report: &FleetReport) -> String {
    report
        .tables
        .iter()
        .map(|t| t.render())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn tables_are_bit_identical_across_jobs() {
    let seq = run_campaign(&spec(1, true));
    let par = run_campaign(&spec(2, true));
    assert_eq!(rendered(&seq), rendered(&par));
    assert_eq!(seq.fork_warmup_saved, par.fork_warmup_saved);
    assert_eq!(seq.events, par.events);
    assert_eq!(seq.host_runs, par.host_runs);
}

#[test]
fn forked_warmup_matches_from_scratch() {
    let forked = run_campaign(&spec(2, true));
    let scratch = run_campaign(&spec(2, false));
    assert_eq!(rendered(&forked), rendered(&scratch));
    // Sharing must actually have shared: equal-composition hosts exist
    // even in this small fleet.
    assert!(forked.fork_warmup_saved > 0, "no warmups were shared");
    assert_eq!(scratch.fork_warmup_saved, 0);
    // The logical fleet event volume is mode-independent.
    assert_eq!(forked.events, scratch.events);
    assert_eq!(forked.host_runs, scratch.host_runs);
}

#[test]
fn churn_accounting_is_consistent() {
    let r = run_campaign(&spec(1, true));
    assert!(r.tenants_placed > 0);
    assert!(r.host_runs > 0);
    // 2 policies × 1 mix, 2 epochs, 2 arms: every cell must have run.
    assert!(r.tables.len() == 1, "one SLO table per mix");
}
