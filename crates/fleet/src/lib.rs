//! # irs-fleet — datacenter-scale fleet campaign
//!
//! Scales the single-host IRS reproduction to a simulated datacenter:
//! `N` hosts (each an [`irs_core::System`]), a tenant model with seeded
//! arrival/departure churn and overcommit, pluggable placement policies,
//! and adversarial tenants running scheduler attacks. Each campaign cell
//! runs the same fleet under vanilla Xen and under IRS, and the results
//! aggregate into fleet-wide SLO tables (per-tenant slowdown p50/p95/p99,
//! victim-vs-attacker breakdown, SA timeout counts) asserting the shared
//! degradation contract ([`irs_core::DEGRADATION_MARGIN`]) per cell.
//!
//! The module layout mirrors the campaign's layers:
//!
//! * [`TenantKind`] / [`AdversaryMix`] — who rents VMs, and which of the
//!   arrivals are hostile (boost gamer, cycle stealer, tick evader from
//!   `irs_workloads::presets::adversarial`).
//! * [`PlacementPolicy`] / [`HostState`] — first-fit, worst-fit/spread,
//!   and interference-aware placement over a per-host steal-time EWMA.
//! * [`run_campaign`] — the grid driver: warmup sharing via
//!   `System::snapshot()`/fork across equal-composition hosts, parallel
//!   host fan-out via `irs_core::parallel` (bit-identical tables at any
//!   `--jobs N`), and table assembly via `irs_metrics`.
//!
//! The `figures fleet` subcommand of `irs-bench` is the CLI front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod placement;
mod tenant;

pub use campaign::{
    run_campaign, CampaignSpec, FleetConfig, FleetReport, FLEET_STRATEGIES, SLOWDOWN_CAP,
};
pub use placement::{HostState, PlacementIndex, PlacementPolicy};
pub use tenant::{AdversaryMix, Tenant, TenantKind};
