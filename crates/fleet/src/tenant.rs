//! The tenant model: who rents VMs on the fleet, and which of them are
//! hostile.
//!
//! A tenant is one VM (a fixed number of vCPUs running one workload
//! bundle). Honest tenants run the barrier/lock-structured batch presets
//! or the CPU hog from the benchmark catalog; adversarial tenants run the
//! scheduler attacks from [`irs_workloads::presets::adversarial`]. The
//! churn model draws tenant kinds from an [`AdversaryMix`] and geometric
//! lifetimes from the cell RNG, so every cell's arrival/departure trace
//! is a pure function of the fleet seed.

use irs_sim::SimRng;
use irs_sync::WaitMode;
use irs_workloads::presets::{adversarial, by_name, hog, server};
use irs_workloads::WorkloadBundle;

/// Everything a tenant can run, honest and hostile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TenantKind {
    /// Barrier-structured batch job (streamcluster-like, run forever).
    BarrierBatch,
    /// Lock-heavy batch job (fluidanimate-like, run forever).
    LockBatch,
    /// The CPU-hog interference micro-benchmark.
    Hog,
    /// Attack: blocks just before slice expiry to re-arm BOOST each wake.
    BoostGamer,
    /// Attack: 10 ms duty cycle phase-locked to the credit-burn tick.
    CycleStealer,
    /// Attack: sub-tick bursts that are almost never observed at a tick.
    TickEvader,
    /// Latency-SLO serving tier: open-loop arrivals through a two-tier
    /// request pipeline (the fleet's interference *victim* par
    /// excellence — its progress is arrival-capped solo, so any slowdown
    /// is pure interference).
    LatencyServer,
}

impl TenantKind {
    /// The honest tenant kinds, in draw order.
    pub const HONEST: [TenantKind; 4] = [
        TenantKind::BarrierBatch,
        TenantKind::LockBatch,
        TenantKind::Hog,
        TenantKind::LatencyServer,
    ];

    /// All kinds, in composition-id order.
    pub const ALL: [TenantKind; 7] = [
        TenantKind::BarrierBatch,
        TenantKind::LockBatch,
        TenantKind::Hog,
        TenantKind::BoostGamer,
        TenantKind::CycleStealer,
        TenantKind::TickEvader,
        TenantKind::LatencyServer,
    ];

    /// Stable small id used in composition keys and seed derivation.
    pub fn id(self) -> u8 {
        match self {
            TenantKind::BarrierBatch => 0,
            TenantKind::LockBatch => 1,
            TenantKind::Hog => 2,
            TenantKind::BoostGamer => 3,
            TenantKind::CycleStealer => 4,
            TenantKind::TickEvader => 5,
            TenantKind::LatencyServer => 6,
        }
    }

    /// Short label for tables and debug output.
    pub fn label(self) -> &'static str {
        match self {
            TenantKind::BarrierBatch => "barrier-batch",
            TenantKind::LockBatch => "lock-batch",
            TenantKind::Hog => "hog",
            TenantKind::BoostGamer => "boost-gamer",
            TenantKind::CycleStealer => "cycle-stealer",
            TenantKind::TickEvader => "tick-evader",
            TenantKind::LatencyServer => "latency-server",
        }
    }

    /// Whether this kind is a scheduler attack (vs an honest workload).
    pub fn is_adversarial(self) -> bool {
        matches!(
            self,
            TenantKind::BoostGamer | TenantKind::CycleStealer | TenantKind::TickEvader
        )
    }

    /// Builds this tenant's workload bundle with `n_threads` threads.
    ///
    /// Honest batch kinds wrap catalog presets in `into_background()` so
    /// every fleet tenant runs to the horizon and per-tenant throughput
    /// (`work_rate`) is the uniform victim metric.
    pub fn bundle(self, n_threads: usize) -> WorkloadBundle {
        match self {
            TenantKind::BarrierBatch => by_name("streamcluster", n_threads, WaitMode::Block)
                .expect("catalog preset")
                .into_background(),
            TenantKind::LockBatch => by_name("fluidanimate", n_threads, WaitMode::Block)
                .expect("catalog preset")
                .into_background(),
            TenantKind::Hog => hog::cpu_hogs(n_threads),
            TenantKind::BoostGamer => adversarial::boost_gamer(n_threads),
            TenantKind::CycleStealer => adversarial::cycle_stealer(n_threads),
            TenantKind::TickEvader => adversarial::tick_evader(n_threads),
            // Split threads across the two tiers at moderate load; solo
            // progress is bounded by the arrival schedule, so slowdown
            // under contention measures interference alone.
            TenantKind::LatencyServer => {
                server::serving_tiers(n_threads.div_ceil(2), (n_threads / 2).max(1), 0.55)
            }
        }
    }
}

/// The probability mix of adversarial arrivals in a cell. Whatever
/// probability mass is left over goes to the honest kinds in equal
/// thirds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryMix {
    /// Mix name (table titles, seed derivation).
    pub name: &'static str,
    /// Probability that an arrival is a boost gamer.
    pub boost: f64,
    /// Probability that an arrival is a cycle stealer.
    pub steal: f64,
    /// Probability that an arrival is a tick evader.
    pub evade: f64,
}

impl AdversaryMix {
    /// No adversaries: the control cell.
    pub const CLEAN: AdversaryMix = AdversaryMix {
        name: "clean",
        boost: 0.0,
        steal: 0.0,
        evade: 0.0,
    };
    /// Boost gamers at 25% of arrivals.
    pub const BOOST: AdversaryMix = AdversaryMix {
        name: "boost",
        boost: 0.25,
        steal: 0.0,
        evade: 0.0,
    };
    /// Cycle stealers at 25% of arrivals.
    pub const STEAL: AdversaryMix = AdversaryMix {
        name: "steal",
        boost: 0.0,
        steal: 0.25,
        evade: 0.0,
    };
    /// Tick evaders at 25% of arrivals.
    pub const EVADE: AdversaryMix = AdversaryMix {
        name: "evade",
        boost: 0.0,
        steal: 0.0,
        evade: 0.25,
    };
    /// All three attacks at 10% each.
    pub const BLEND: AdversaryMix = AdversaryMix {
        name: "blend",
        boost: 0.1,
        steal: 0.1,
        evade: 0.1,
    };

    /// Total adversarial probability mass.
    pub fn adversarial_frac(&self) -> f64 {
        self.boost + self.steal + self.evade
    }

    /// Draws one arrival's kind from the mix (two RNG draws: attack
    /// class, then honest kind — always both, so the stream shape is
    /// mix-independent).
    pub fn draw(&self, rng: &mut SimRng) -> TenantKind {
        let r = rng.unit_f64();
        let honest = TenantKind::HONEST[rng.index(TenantKind::HONEST.len())];
        if r < self.boost {
            TenantKind::BoostGamer
        } else if r < self.boost + self.steal {
            TenantKind::CycleStealer
        } else if r < self.adversarial_frac() {
            TenantKind::TickEvader
        } else {
            honest
        }
    }
}

/// One placed tenant: its kind, the host it lives on, and the epoch at
/// the start of which it departs.
#[derive(Debug, Clone, Copy)]
pub struct Tenant {
    /// The workload kind.
    pub kind: TenantKind,
    /// Host index in the fleet.
    pub host: usize,
    /// The tenant leaves before this epoch's runs (exclusive lifetime).
    pub departs_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, k) in TenantKind::ALL.into_iter().enumerate() {
            assert_eq!(k.id() as usize, i);
            assert!(seen.insert(k.id()));
        }
    }

    #[test]
    fn every_kind_builds_an_endless_bundle() {
        for k in TenantKind::ALL {
            let b = k.bundle(2);
            assert_eq!(b.n_threads(), 2, "{}", k.label());
        }
    }

    #[test]
    fn clean_mix_never_draws_adversaries() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..200 {
            assert!(!AdversaryMix::CLEAN.draw(&mut rng).is_adversarial());
        }
    }

    #[test]
    fn blend_mix_draws_all_three_attacks() {
        let mut rng = SimRng::seed_from(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(AdversaryMix::BLEND.draw(&mut rng));
        }
        assert!(seen.contains(&TenantKind::BoostGamer));
        assert!(seen.contains(&TenantKind::CycleStealer));
        assert!(seen.contains(&TenantKind::TickEvader));
    }
}
