//! Placement policies: which host receives an arriving tenant.
//!
//! A policy sees only aggregate per-host state — vCPUs already placed
//! and an interference signal (steal-time EWMA from the previous
//! epochs' runs) — mirroring what a real placement controller can
//! observe without trusting the tenants. All tie-breaks are by lowest
//! host index, so placement traces are deterministic.

/// Aggregate per-host state the policies decide on.
#[derive(Debug, Clone, Default)]
pub struct HostState {
    /// vCPUs of currently placed tenants.
    pub used_vcpus: usize,
    /// Exponentially weighted steal-time fraction observed on this host
    /// over past epochs (0 = idle or interference-free).
    pub steal_ewma: f64,
}

/// The placement policies the campaign compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Lowest-index host with room: packs tenants densely.
    FirstFit,
    /// Most-free host: spreads tenants evenly.
    WorstFit,
    /// Least-interfered host with room: spreads away from hosts whose
    /// steal-EWMA says their tenants are fighting (adversary-avoiding).
    InterferenceAware,
}

impl PlacementPolicy {
    /// Stable small id for seed derivation.
    pub fn id(self) -> u8 {
        match self {
            PlacementPolicy::FirstFit => 0,
            PlacementPolicy::WorstFit => 1,
            PlacementPolicy::InterferenceAware => 2,
        }
    }

    /// Label for table columns.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::WorstFit => "worst-fit",
            PlacementPolicy::InterferenceAware => "interf-aware",
        }
    }

    /// Picks a host for a tenant needing `need` vCPUs under a per-host
    /// vCPU `capacity` (pCPUs × overcommit). Returns `None` when the
    /// fleet is full (the arrival is rejected).
    pub fn place(self, hosts: &[HostState], capacity: usize, need: usize) -> Option<usize> {
        let fits = |h: &HostState| h.used_vcpus + need <= capacity;
        match self {
            PlacementPolicy::FirstFit => hosts.iter().position(fits),
            PlacementPolicy::WorstFit => hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| fits(h))
                // max_by_key returns the *last* max; enumerate in reverse
                // so ties resolve to the lowest index.
                .rev()
                .max_by_key(|(_, h)| capacity - h.used_vcpus)
                .map(|(i, _)| i),
            PlacementPolicy::InterferenceAware => hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| fits(h))
                .rev()
                // Least steal first; break steal ties by most-free, then
                // lowest index. Total order via bit patterns is safe:
                // EWMAs are finite and non-negative.
                .min_by(|(_, a), (_, b)| {
                    a.steal_ewma
                        .total_cmp(&b.steal_ewma)
                        .then(a.used_vcpus.cmp(&b.used_vcpus))
                })
                .map(|(i, _)| i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(used: &[usize], steal: &[f64]) -> Vec<HostState> {
        used.iter()
            .zip(steal)
            .map(|(&used_vcpus, &steal_ewma)| HostState {
                used_vcpus,
                steal_ewma,
            })
            .collect()
    }

    #[test]
    fn first_fit_packs_lowest_index() {
        let h = hosts(&[4, 2, 0], &[0.0, 0.0, 0.0]);
        assert_eq!(PlacementPolicy::FirstFit.place(&h, 4, 2), Some(1));
    }

    #[test]
    fn worst_fit_spreads_to_most_free() {
        let h = hosts(&[4, 2, 0], &[0.0, 0.0, 0.0]);
        assert_eq!(PlacementPolicy::WorstFit.place(&h, 4, 2), Some(2));
    }

    #[test]
    fn worst_fit_breaks_ties_low_index() {
        let h = hosts(&[2, 2, 2], &[0.0, 0.0, 0.0]);
        assert_eq!(PlacementPolicy::WorstFit.place(&h, 4, 2), Some(0));
    }

    #[test]
    fn interference_aware_avoids_noisy_hosts() {
        let h = hosts(&[2, 2, 2], &[0.4, 0.05, 0.4]);
        assert_eq!(PlacementPolicy::InterferenceAware.place(&h, 4, 2), Some(1));
    }

    #[test]
    fn interference_aware_breaks_steal_ties_by_free_space() {
        let h = hosts(&[2, 0], &[0.1, 0.1]);
        assert_eq!(PlacementPolicy::InterferenceAware.place(&h, 4, 2), Some(1));
    }

    #[test]
    fn full_fleet_rejects() {
        let h = hosts(&[4, 3], &[0.0, 0.0]);
        for p in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::WorstFit,
            PlacementPolicy::InterferenceAware,
        ] {
            assert_eq!(p.place(&h, 4, 2), None);
        }
    }
}
