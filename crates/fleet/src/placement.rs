//! Placement policies: which host receives an arriving tenant.
//!
//! A policy sees only aggregate per-host state — vCPUs already placed
//! and an interference signal (steal-time EWMA from the previous
//! epochs' runs) — mirroring what a real placement controller can
//! observe without trusting the tenants. All tie-breaks are by host
//! index (lowest for first-fit and worst-fit, highest for
//! interference-aware), so placement traces are deterministic.
//!
//! Two implementations answer the same query: the O(hosts) linear scan
//! on a `&[HostState]` slice ([`PlacementPolicy::place`], the reference
//! semantics) and the indexed [`PlacementIndex`] the campaign actually
//! uses, which keeps per-policy candidate structures (a min-used segment
//! tree for first-fit, ordered sets for worst-fit and
//! interference-aware) so a 1000-host fleet places in O(log hosts)
//! instead of rescanning the fleet per arrival. The equivalence tests at
//! the bottom of this module pin both to identical decisions.

use std::cmp::Reverse;
use std::collections::BTreeSet;

/// Aggregate per-host state the policies decide on.
#[derive(Debug, Clone, Default)]
pub struct HostState {
    /// vCPUs of currently placed tenants.
    pub used_vcpus: usize,
    /// Exponentially weighted steal-time fraction observed on this host
    /// over past epochs (0 = idle or interference-free).
    pub steal_ewma: f64,
}

/// The placement policies the campaign compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Lowest-index host with room: packs tenants densely.
    FirstFit,
    /// Most-free host: spreads tenants evenly.
    WorstFit,
    /// Least-interfered host with room: spreads away from hosts whose
    /// steal-EWMA says their tenants are fighting (adversary-avoiding).
    InterferenceAware,
}

impl PlacementPolicy {
    /// Stable small id for seed derivation.
    pub fn id(self) -> u8 {
        match self {
            PlacementPolicy::FirstFit => 0,
            PlacementPolicy::WorstFit => 1,
            PlacementPolicy::InterferenceAware => 2,
        }
    }

    /// Label for table columns.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::WorstFit => "worst-fit",
            PlacementPolicy::InterferenceAware => "interf-aware",
        }
    }

    /// Picks a host for a tenant needing `need` vCPUs under a per-host
    /// vCPU `capacity` (pCPUs × overcommit). Returns `None` when the
    /// fleet is full (the arrival is rejected).
    pub fn place(self, hosts: &[HostState], capacity: usize, need: usize) -> Option<usize> {
        let fits = |h: &HostState| h.used_vcpus + need <= capacity;
        match self {
            PlacementPolicy::FirstFit => hosts.iter().position(fits),
            PlacementPolicy::WorstFit => hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| fits(h))
                // max_by_key returns the *last* max; enumerate in reverse
                // so ties resolve to the lowest index.
                .rev()
                .max_by_key(|(_, h)| capacity - h.used_vcpus)
                .map(|(i, _)| i),
            PlacementPolicy::InterferenceAware => hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| fits(h))
                .rev()
                // Least steal first; break steal ties by most-free.
                // `min_by` keeps the *first* minimum, so over the
                // reversed iterator full ties resolve to the highest
                // index. Total order via bit patterns is safe: EWMAs are
                // finite and non-negative.
                .min_by(|(_, a), (_, b)| {
                    a.steal_ewma
                        .total_cmp(&b.steal_ewma)
                        .then(a.used_vcpus.cmp(&b.used_vcpus))
                })
                .map(|(i, _)| i),
        }
    }
}

/// Maps a steal EWMA to an order-preserving integer key: for the finite,
/// non-negative values the campaign produces, `f64::to_bits` is monotone,
/// so ordering bit keys equals `total_cmp` on the floats. Values at or
/// below zero (including `-0.0`) collapse to key 0.
fn steal_key(ewma: f64) -> u64 {
    if ewma <= 0.0 {
        0
    } else {
        ewma.to_bits()
    }
}

/// Indexed candidate structure answering every [`PlacementPolicy`] query
/// without scanning the fleet.
///
/// Maintains, in parallel:
///
/// * a **min-used segment tree** over host index — first-fit descends it
///   to the lowest-index host with room in O(log hosts);
/// * an ordered `(used, host)` set — worst-fit reads its first element
///   (most-free, ties to the lowest index);
/// * an ordered `(steal key, used, Reverse(host))` set —
///   interference-aware takes the first *fitting* element (least steal,
///   then most-free, then — matching the reference scan's tie-break —
///   highest index; typically the first few entries).
///
/// Decisions are identical to the linear reference scan — the module
/// tests drive both against random fleets and assert equality.
#[derive(Debug, Clone)]
pub struct PlacementIndex {
    /// Per-host vCPU capacity (pCPUs × overcommit).
    capacity: usize,
    used: Vec<usize>,
    steal: Vec<f64>,
    /// Min-used segment tree: `seg[1]` is the root, leaves start at
    /// `base`; hosts beyond the fleet pad with `usize::MAX`.
    seg: Vec<usize>,
    base: usize,
    by_free: BTreeSet<(usize, usize)>,
    by_steal: BTreeSet<(u64, usize, Reverse<usize>)>,
}

impl PlacementIndex {
    /// An empty fleet of `hosts` hosts with per-host vCPU `capacity`.
    pub fn new(hosts: usize, capacity: usize) -> Self {
        let base = hosts.next_power_of_two().max(1);
        let mut seg = vec![usize::MAX; 2 * base];
        for h in 0..hosts {
            seg[base + h] = 0;
        }
        for i in (1..base).rev() {
            seg[i] = seg[2 * i].min(seg[2 * i + 1]);
        }
        PlacementIndex {
            capacity,
            used: vec![0; hosts],
            steal: vec![0.0; hosts],
            seg,
            base,
            by_free: (0..hosts).map(|h| (0, h)).collect(),
            by_steal: (0..hosts).map(|h| (0, 0, Reverse(h))).collect(),
        }
    }

    /// Number of hosts indexed.
    pub fn hosts(&self) -> usize {
        self.used.len()
    }

    /// Per-host vCPU capacity the index was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// vCPUs currently placed on `host`.
    pub fn used(&self, host: usize) -> usize {
        self.used[host]
    }

    /// `host`'s current steal EWMA.
    pub fn steal(&self, host: usize) -> f64 {
        self.steal[host]
    }

    /// Re-keys `host` across all three structures.
    fn rekey(&mut self, host: usize, new_used: usize, new_steal: f64) {
        let (old_used, old_steal) = (self.used[host], self.steal[host]);
        self.by_free.remove(&(old_used, host));
        self.by_steal
            .remove(&(steal_key(old_steal), old_used, Reverse(host)));
        self.used[host] = new_used;
        self.steal[host] = new_steal;
        self.by_free.insert((new_used, host));
        self.by_steal
            .insert((steal_key(new_steal), new_used, Reverse(host)));
        let mut i = self.base + host;
        self.seg[i] = new_used;
        while i > 1 {
            i /= 2;
            self.seg[i] = self.seg[2 * i].min(self.seg[2 * i + 1]);
        }
    }

    /// Records a placement of `vcpus` on `host`.
    pub fn add_tenant(&mut self, host: usize, vcpus: usize) {
        self.rekey(host, self.used[host] + vcpus, self.steal[host]);
    }

    /// Records a departure of `vcpus` from `host`.
    pub fn remove_tenant(&mut self, host: usize, vcpus: usize) {
        let u = self.used[host];
        assert!(u >= vcpus, "departure exceeds placed vCPUs on host {host}");
        self.rekey(host, u - vcpus, self.steal[host]);
    }

    /// Updates `host`'s steal EWMA (the telemetry feedback path).
    pub fn set_steal(&mut self, host: usize, ewma: f64) {
        self.rekey(host, self.used[host], ewma);
    }

    /// Picks a host for a tenant needing `need` vCPUs — same contract and
    /// identical decisions as [`PlacementPolicy::place`] over equivalent
    /// [`HostState`]s.
    pub fn place(&self, policy: PlacementPolicy, need: usize) -> Option<usize> {
        let limit = self.capacity.checked_sub(need)?;
        match policy {
            PlacementPolicy::FirstFit => {
                if self.seg[1] > limit {
                    return None;
                }
                let mut i = 1;
                while i < self.base {
                    i = if self.seg[2 * i] <= limit { 2 * i } else { 2 * i + 1 };
                }
                Some(i - self.base)
            }
            PlacementPolicy::WorstFit => match self.by_free.first() {
                Some(&(used, host)) if used <= limit => Some(host),
                _ => None,
            },
            PlacementPolicy::InterferenceAware => self
                .by_steal
                .iter()
                .find(|&&(_, used, _)| used <= limit)
                .map(|&(_, _, Reverse(host))| host),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_sim::SimRng;

    fn hosts(used: &[usize], steal: &[f64]) -> Vec<HostState> {
        used.iter()
            .zip(steal)
            .map(|(&used_vcpus, &steal_ewma)| HostState {
                used_vcpus,
                steal_ewma,
            })
            .collect()
    }

    #[test]
    fn first_fit_packs_lowest_index() {
        let h = hosts(&[4, 2, 0], &[0.0, 0.0, 0.0]);
        assert_eq!(PlacementPolicy::FirstFit.place(&h, 4, 2), Some(1));
    }

    #[test]
    fn worst_fit_spreads_to_most_free() {
        let h = hosts(&[4, 2, 0], &[0.0, 0.0, 0.0]);
        assert_eq!(PlacementPolicy::WorstFit.place(&h, 4, 2), Some(2));
    }

    #[test]
    fn worst_fit_breaks_ties_low_index() {
        let h = hosts(&[2, 2, 2], &[0.0, 0.0, 0.0]);
        assert_eq!(PlacementPolicy::WorstFit.place(&h, 4, 2), Some(0));
    }

    #[test]
    fn interference_aware_avoids_noisy_hosts() {
        let h = hosts(&[2, 2, 2], &[0.4, 0.05, 0.4]);
        assert_eq!(PlacementPolicy::InterferenceAware.place(&h, 4, 2), Some(1));
    }

    #[test]
    fn interference_aware_breaks_steal_ties_by_free_space() {
        let h = hosts(&[2, 0], &[0.1, 0.1]);
        assert_eq!(PlacementPolicy::InterferenceAware.place(&h, 4, 2), Some(1));
    }

    #[test]
    fn full_fleet_rejects() {
        let h = hosts(&[4, 3], &[0.0, 0.0]);
        for p in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::WorstFit,
            PlacementPolicy::InterferenceAware,
        ] {
            assert_eq!(p.place(&h, 4, 2), None);
        }
    }

    const ALL_POLICIES: [PlacementPolicy; 3] = [
        PlacementPolicy::FirstFit,
        PlacementPolicy::WorstFit,
        PlacementPolicy::InterferenceAware,
    ];

    /// The index must make exactly the decision the linear reference scan
    /// makes, at every point of a randomized churn trace.
    #[test]
    fn index_matches_linear_scan_over_random_churn() {
        let (n, capacity, need) = (13, 6, 2);
        let mut rng = SimRng::seed_from(42);
        let mut idx = PlacementIndex::new(n, capacity);
        let mut mirror = vec![HostState::default(); n];
        for step in 0..600 {
            // Random churn: placements, departures, telemetry updates.
            match rng.index(3) {
                0 => {
                    let h = rng.index(n);
                    if mirror[h].used_vcpus + need <= capacity {
                        idx.add_tenant(h, need);
                        mirror[h].used_vcpus += need;
                    }
                }
                1 => {
                    let h = rng.index(n);
                    if mirror[h].used_vcpus >= need {
                        idx.remove_tenant(h, need);
                        mirror[h].used_vcpus -= need;
                    }
                }
                _ => {
                    let h = rng.index(n);
                    let s = rng.unit_f64() * 0.8;
                    idx.set_steal(h, s);
                    mirror[h].steal_ewma = s;
                }
            }
            for p in ALL_POLICIES {
                assert_eq!(
                    idx.place(p, need),
                    p.place(&mirror, capacity, need),
                    "{} diverged at step {step}",
                    p.label()
                );
            }
        }
    }

    #[test]
    fn index_handles_degenerate_shapes() {
        // Empty fleet: everything rejects.
        let idx = PlacementIndex::new(0, 4);
        for p in ALL_POLICIES {
            assert_eq!(idx.place(p, 2), None);
        }
        // Need exceeding capacity: rejected, not underflowed.
        let idx = PlacementIndex::new(3, 4);
        for p in ALL_POLICIES {
            assert_eq!(idx.place(p, 5), None);
        }
        // Single host.
        let mut idx = PlacementIndex::new(1, 4);
        assert_eq!(idx.place(PlacementPolicy::FirstFit, 2), Some(0));
        idx.add_tenant(0, 4);
        assert_eq!(idx.place(PlacementPolicy::FirstFit, 2), None);
    }

    #[test]
    fn steal_key_orders_like_total_cmp_on_campaign_values() {
        let vals = [0.0, -0.0, 1e-300, 0.1, 0.5, 0.99, 1.0];
        for &a in &vals {
            for &b in &vals {
                let bits = steal_key(a).cmp(&steal_key(b));
                // -0.0 collapses onto 0.0 by design; everything else must
                // match total_cmp.
                let norm = |x: f64| if x == 0.0 { 0.0 } else { x };
                assert_eq!(bits, norm(a).total_cmp(&norm(b)), "{a} vs {b}");
            }
        }
    }
}
