//! The fleet campaign: N hosts × tenant churn × placement policies ×
//! adversary mixes, vanilla vs IRS, aggregated into fleet-wide SLO
//! tables.
//!
//! # Structure
//!
//! The campaign grid is *cells*: one `(placement policy, adversary mix,
//! overcommit)` combination. Each cell simulates the same fleet twice —
//! once per strategy arm (vanilla Xen and IRS) — over `epochs` rounds of
//! tenant churn. Within an epoch every occupied host is one independent
//! [`System`] run to the epoch horizon; per-tenant *slowdown* is the
//! tenant's solo useful-work rate divided by its rate in the contended
//! run.
//!
//! # Warmup sharing
//!
//! Hosts whose tenant composition (multiset of tenant kinds) is
//! identical are *identical simulations*: the scenario seed derives from
//! the composition, so their runs are bit-for-bit equal. The campaign
//! groups hosts by composition and uses
//! [`irs_core::runner::run_forked_grid`] to pay each group's warmup
//! prefix once, branching the snapshot into one completion per member
//! host. `FleetConfig::share_warmup = false` runs every host from
//! scratch instead — same tables, more events (the determinism tests
//! compare the two). The statistical meaning is unchanged either way:
//! equal-composition hosts are exchangeable by construction, since
//! placement never feeds back into a host's *internal* schedule.
//!
//! # Incremental epochs
//!
//! Because a host's scenario seed depends only on its composition (not
//! the epoch, policy, mix, or overcommit), re-running an unchanged host
//! next epoch reproduces the same result bit for bit. The campaign's
//! *incremental* mode (`FleetConfig::incremental`, on by default)
//! exploits this at two layers:
//!
//! * **Dirty-host carry-over** — each host tracks whether churn
//!   (arrival or departure; telemetry feeds only placement) touched it
//!   this epoch. Clean hosts carry their previous epoch's
//!   `Arc<RunResult>` per arm and skip simulation entirely, immune to
//!   cache eviction.
//! * **Composition-keyed cache** — groups not resolved by carry go
//!   through [`irs_core::runner::run_forked_grid_cached`], whose
//!   [`ForkCache`] memoizes warmup snapshots and completed results by
//!   composition seed *across epochs, arms, and cells* under a byte
//!   budget (`FleetConfig::cache_bytes`).
//!
//! Reuse is observationally invisible — the SLO tables are bit-identical
//! to a full re-simulation — because branches of one snapshot are
//! bit-identical to from-scratch runs (the snapshot determinism
//! contract) and samples are absorbed in the same order either way. The
//! elision counters (`runs_elided`, `events_elided`, `hosts_carried`)
//! together with `fork_warmup_saved` decompose the logical event volume:
//! `executed = events − fork_warmup_saved − events_elided` always holds.
//!
//! # Determinism
//!
//! Churn, placement, and lifetimes are drawn sequentially from one
//! `SimRng` forked per cell; host runs fan out only through
//! [`irs_core::parallel::ordered_map`]. Cache bookkeeping and carry
//! resolution happen sequentially on the driver thread. Tables and every
//! counter are therefore bit-identical for every `--jobs` value.

use crate::placement::{PlacementIndex, PlacementPolicy};
use crate::tenant::{AdversaryMix, Tenant, TenantKind};
use irs_core::runner::{run_forked_grid, run_forked_grid_cached, ForkCache, ForkCacheStats};
use irs_core::{
    parallel, RunResult, Scenario, Strategy, SystemConfig, VmScenario, DEGRADATION_MARGIN,
};
use irs_metrics::{percentile, Series, Summary, Table};
use irs_sim::{SimRng, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The two strategy arms every cell compares.
pub const FLEET_STRATEGIES: [Strategy; 2] = [Strategy::Vanilla, Strategy::Irs];

/// Slowdowns are capped here so a tenant that made no progress at all in
/// an epoch contributes a large finite sample instead of infinity.
pub const SLOWDOWN_CAP: f64 = 1_000.0;

/// Fleet shape and churn parameters (one cell's worth; the campaign
/// varies policy/mix/overcommit around one config).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of hosts in the fleet.
    pub hosts: usize,
    /// Physical CPUs per host.
    pub host_pcpus: usize,
    /// vCPUs (= threads) per tenant VM.
    pub tenant_vcpus: usize,
    /// vCPU overcommit factor: per-host capacity = pCPUs × overcommit.
    pub overcommit: f64,
    /// Churn rounds; each occupied host runs once per epoch per arm.
    pub epochs: u64,
    /// Virtual warmup prefix shared across equal-composition hosts.
    pub warmup: SimTime,
    /// Virtual run length of one epoch (includes the warmup prefix).
    pub epoch_horizon: SimTime,
    /// Tenants placed in epoch 0.
    pub initial_tenants: usize,
    /// Tenant arrivals per later epoch.
    pub arrivals_per_epoch: usize,
    /// Per-epoch departure probability (geometric lifetimes).
    pub depart_chance: f64,
    /// Fleet seed: the single root of all churn and scenario randomness.
    pub seed: u64,
    /// Worker threads (0 = process default); tables are jobs-invariant.
    pub jobs: usize,
    /// Share warmups across equal-composition hosts via snapshot/fork.
    pub share_warmup: bool,
    /// Reuse results across epochs, arms, and cells: clean (churn-free)
    /// hosts carry their previous result forward, and a
    /// composition-keyed snapshot/result cache serves the rest. Tables
    /// are bit-identical either way; `false` re-simulates everything
    /// (the reference mode the parity tests compare against).
    pub incremental: bool,
    /// Estimated-byte budget for the incremental snapshot/result cache
    /// (ignored when `incremental` is off).
    pub cache_bytes: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            hosts: 120,
            host_pcpus: 4,
            tenant_vcpus: 2,
            overcommit: 1.5,
            epochs: 3,
            warmup: SimTime::from_millis(50),
            epoch_horizon: SimTime::from_millis(400),
            initial_tenants: 300,
            arrivals_per_epoch: 100,
            depart_chance: 0.35,
            seed: 1,
            jobs: 0,
            share_warmup: true,
            incremental: true,
            cache_bytes: 256 << 20,
        }
    }
}

impl FleetConfig {
    /// Per-host vCPU capacity under this overcommit factor.
    pub fn capacity_vcpus(&self) -> usize {
        (self.host_pcpus as f64 * self.overcommit).round() as usize
    }
}

/// The full campaign: a fleet config plus the grid axes.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Shared fleet shape (its `overcommit` is the grid's default).
    pub fleet: FleetConfig,
    /// Placement policies to compare (table columns).
    pub policies: Vec<PlacementPolicy>,
    /// Adversary mixes to run (one SLO table each).
    pub mixes: Vec<AdversaryMix>,
    /// Extra overcommit factors swept at first policy × last mix
    /// (empty disables the sweep table).
    pub overcommit_sweep: Vec<f64>,
    /// Assert the degradation contract (IRS p95 and mean slowdown ≤
    /// vanilla × [`DEGRADATION_MARGIN`]) in every cell.
    pub assert_contract: bool,
}

/// Everything `figures fleet` reports.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One SLO table per adversary mix, then the overcommit sweep table
    /// (if enabled).
    pub tables: Vec<Table>,
    /// Events the snapshot/fork warmup sharing avoided re-executing.
    pub fork_warmup_saved: u64,
    /// Post-warmup events not re-executed thanks to carry-over and result
    /// memoization. `events − fork_warmup_saved − events_elided` is what
    /// the campaign actually simulated.
    pub events_elided: u64,
    /// Logical fleet event volume (sum over all host runs; shared
    /// warmup prefixes counted once per host they served).
    pub events: u64,
    /// Host runs in the logical grid (hosts × epochs × arms × cells,
    /// occupied hosts only) — identical in incremental and full modes.
    pub host_runs: usize,
    /// Logical host runs served without a fresh simulation (carried or
    /// memoized); 0 in full mode.
    pub runs_elided: u64,
    /// Host runs served specifically by the dirty-host carry-over layer
    /// (a subset of `runs_elided`).
    pub hosts_carried: u64,
    /// Tenants successfully placed across all cells.
    pub tenants_placed: u64,
    /// Tenant arrivals rejected because no host had capacity.
    pub tenants_rejected: u64,
    /// Final snapshot/result cache counters (all zero in full mode).
    pub cache: ForkCacheStats,
    /// Logical-vs-executed accounting per mix column (not part of
    /// `tables` so incremental/full SLO parity can be compared directly).
    pub accounting: Table,
}

/// Per-arm sample accumulators for one cell.
#[derive(Debug, Clone, Default)]
struct ArmSamples {
    /// Slowdown of every honest tenant-epoch observation.
    honest: Vec<f64>,
    /// Honest tenants co-located with at least one adversary.
    victim: Vec<f64>,
    /// Slowdown of adversarial tenants (their attacks' cost to them).
    attacker: Vec<f64>,
    sa_timeouts: u64,
    /// Requests still in flight at epoch horizons (latency-server
    /// tenants): the truncated tail, surfaced instead of silently
    /// dropped.
    requests_truncated: u64,
    events: u64,
    runs: usize,
}

/// One cell's outcome: both arms plus churn and elision accounting.
#[derive(Debug, Clone)]
struct CellOutcome {
    arms: [ArmSamples; 2],
    fork_warmup_saved: u64,
    events_elided: u64,
    runs_elided: u64,
    hosts_carried: u64,
    placed: u64,
    rejected: u64,
}

/// FNV-1a over the cell/composition identity — the scenario seed.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Scenario seed for a host composition under one strategy arm. Depends
/// only on (fleet seed, arm, composition): equal-composition hosts are
/// identical runs — the invariant warmup sharing relies on.
fn comp_seed(fleet_seed: u64, arm: usize, comp: &[u8]) -> u64 {
    let mut bytes = fleet_seed.to_le_bytes().to_vec();
    bytes.push(arm as u8);
    bytes.extend_from_slice(comp);
    fnv1a64(&bytes)
}

/// Builds the host scenario for one composition (sorted kind ids) under
/// one strategy arm. Honest tenants run SA-capable guests when the
/// strategy supports them; adversaries never cooperate with the SA
/// protocol. VMs are unpinned, so the credit scheduler load-balances.
fn scenario_for(comp: &[u8], arm: usize, cfg: &FleetConfig) -> Scenario {
    let strategy = FLEET_STRATEGIES[arm];
    let seed = comp_seed(cfg.seed, arm, comp);
    let mut s = Scenario::new(cfg.host_pcpus, strategy, seed).horizon(cfg.epoch_horizon);
    for &kid in comp {
        let kind = TenantKind::ALL[kid as usize];
        let mut vm = VmScenario::new(kind.bundle(cfg.tenant_vcpus), cfg.tenant_vcpus);
        if !kind.is_adversarial() && strategy.sa_capable_guest() {
            vm = vm.irs_guest(true);
        }
        s = s.vm(vm);
    }
    s
}

/// Solo useful-work rates per (kind, arm): the slowdown baselines. One
/// single-tenant host run each, through one fan-out.
fn solo_rates(cfg: &FleetConfig) -> BTreeMap<(u8, usize), f64> {
    let pairs: Vec<(u8, usize)> = (0..FLEET_STRATEGIES.len())
        .flat_map(|arm| TenantKind::ALL.map(|k| (k.id(), arm)))
        .collect();
    let rates = parallel::ordered_map(cfg.jobs, pairs.len(), |i| {
        let (kid, arm) = pairs[i];
        let r = scenario_for(&[kid], arm, cfg).run();
        r.vms[0].work_rate(r.elapsed)
    });
    pairs.into_iter().zip(rates).collect()
}

/// Slowdown vs solo, capped at [`SLOWDOWN_CAP`].
fn slowdown(solo_rate: f64, contended_rate: f64) -> f64 {
    if solo_rate <= 0.0 {
        return 1.0;
    }
    if contended_rate <= solo_rate / SLOWDOWN_CAP {
        SLOWDOWN_CAP
    } else {
        solo_rate / contended_rate
    }
}

/// Folds one host run into the arm's samples and the host's steal
/// telemetry. Shared by the incremental and full paths so both absorb
/// members in exactly the same order with exactly the same float
/// accumulation — the root of incremental/full bit-identity.
fn absorb_host_run(
    samples: &mut ArmSamples,
    comp: &[u8],
    has_adversary: bool,
    solo: &BTreeMap<(u8, usize), f64>,
    arm: usize,
    r: &RunResult,
    steal_frac: &mut f64,
) {
    samples.sa_timeouts += r.hv.sa_timeouts;
    samples.events += r.events;
    samples.runs += 1;
    let mut cpu = 0.0;
    let mut steal = 0.0;
    for (vm, &kid) in r.vms.iter().zip(comp) {
        let kind = TenantKind::ALL[kid as usize];
        samples.requests_truncated += vm.requests_truncated;
        let sd = slowdown(solo[&(kid, arm)], vm.work_rate(r.elapsed));
        if kind.is_adversarial() {
            samples.attacker.push(sd);
        } else {
            samples.honest.push(sd);
            if has_adversary {
                samples.victim.push(sd);
            }
        }
        cpu += vm.cpu_time.as_secs_f64();
        steal += vm.steal_time.as_secs_f64();
    }
    if cpu + steal > 0.0 {
        // Half-weight per arm: the EWMA input is the mean over both arms.
        *steal_frac += 0.5 * steal / (cpu + steal);
    }
}

/// Runs one cell: `epochs` rounds of churn, each epoch simulated under
/// both strategy arms with the *same* placement trace.
fn run_cell(
    cfg: &FleetConfig,
    policy: PlacementPolicy,
    mix: &AdversaryMix,
    solo: &BTreeMap<(u8, usize), f64>,
    cache: &mut ForkCache,
) -> CellOutcome {
    let capacity = cfg.capacity_vcpus();
    assert!(
        cfg.tenant_vcpus <= capacity,
        "tenant vCPUs exceed host capacity"
    );
    assert!(cfg.warmup < cfg.epoch_horizon, "warmup must precede horizon");
    // One RNG per cell, salted with the cell coordinates; all churn is
    // drawn sequentially from it.
    let cell_salt = fnv1a64(&[
        &[policy.id()][..],
        mix.name.as_bytes(),
        &capacity.to_le_bytes(),
    ]
    .concat());
    let mut rng = SimRng::seed_from(cfg.seed).fork(cell_salt);

    let mut index = PlacementIndex::new(cfg.hosts, capacity);
    // Churn dirtiness and per-arm carried results. A host whose tenant
    // set did not change re-runs the exact same scenario next epoch
    // (seeds depend only on composition), so its previous result stands
    // in verbatim; any arrival or departure clears the carry. Telemetry
    // updates feed only placement and never dirty a host.
    let mut dirty = vec![false; cfg.hosts];
    let mut carry: Vec<[Option<Arc<RunResult>>; 2]> = vec![[None, None]; cfg.hosts];
    let mut active: Vec<Tenant> = Vec::new();
    let mut out = CellOutcome {
        arms: [ArmSamples::default(), ArmSamples::default()],
        fork_warmup_saved: 0,
        events_elided: 0,
        runs_elided: 0,
        hosts_carried: 0,
        placed: 0,
        rejected: 0,
    };

    for epoch in 0..cfg.epochs {
        // Departures leave before this epoch's runs.
        active.retain(|t| {
            let stays = t.departs_at > epoch;
            if !stays {
                index.remove_tenant(t.host, cfg.tenant_vcpus);
                dirty[t.host] = true;
                carry[t.host] = [None, None];
            }
            stays
        });
        // Arrivals: kind, lifetime, then placement.
        let n_arrivals = if epoch == 0 {
            cfg.initial_tenants
        } else {
            cfg.arrivals_per_epoch
        };
        for _ in 0..n_arrivals {
            let kind = mix.draw(&mut rng);
            let mut life = 1;
            while life < 32 && !rng.chance(cfg.depart_chance) {
                life += 1;
            }
            match index.place(policy, cfg.tenant_vcpus) {
                Some(host) => {
                    index.add_tenant(host, cfg.tenant_vcpus);
                    dirty[host] = true;
                    carry[host] = [None, None];
                    active.push(Tenant {
                        kind,
                        host,
                        departs_at: epoch + life,
                    });
                    out.placed += 1;
                }
                None => out.rejected += 1,
            }
        }

        // Tenants per host in canonical (kind, arrival) order = the VM
        // order of the host's scenario.
        let mut tenants_of: Vec<Vec<TenantKind>> = vec![Vec::new(); cfg.hosts];
        for t in &active {
            tenants_of[t.host].push(t.kind);
        }
        for ts in &mut tenants_of {
            ts.sort_by_key(|k| k.id());
        }
        // Group occupied hosts by composition.
        let mut groups: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
        for (h, ts) in tenants_of.iter().enumerate() {
            if !ts.is_empty() {
                let comp: Vec<u8> = ts.iter().map(|k| k.id()).collect();
                groups.entry(comp).or_default().push(h);
            }
        }
        let comps: Vec<&Vec<u8>> = groups.keys().collect();
        let sizes: Vec<usize> = groups.values().map(|m| m.len()).collect();
        let members: Vec<&Vec<usize>> = groups.values().collect();

        // Mean steal fraction per host across the two arms, for the
        // placement EWMA.
        let mut steal_frac = vec![0.0f64; cfg.hosts];

        for (arm, _strategy) in FLEET_STRATEGIES.iter().enumerate() {
            if cfg.incremental {
                // Resolve each group: clean-host carry first (free and
                // eviction-immune), then the composition-keyed cache,
                // then a fresh warmup + completion for the rest.
                let mut shared: Vec<Option<Arc<RunResult>>> = vec![None; comps.len()];
                for (g, slot) in shared.iter_mut().enumerate() {
                    let carried = members[g]
                        .iter()
                        .filter(|&&h| !dirty[h])
                        .find_map(|&h| carry[h][arm].clone());
                    if let Some(r) = carried {
                        let n = sizes[g] as u64;
                        out.hosts_carried += n;
                        out.runs_elided += n;
                        out.events_elided += n * r.events;
                        *slot = Some(r);
                    }
                }
                let pending: Vec<usize> =
                    (0..comps.len()).filter(|&g| shared[g].is_none()).collect();
                let keyed: Vec<(u64, usize)> = pending
                    .iter()
                    .map(|&g| (comp_seed(cfg.seed, arm, comps[g]), sizes[g]))
                    .collect();
                let grid = run_forked_grid_cached(
                    cfg.jobs,
                    cfg.share_warmup.then_some(cfg.warmup),
                    &SystemConfig::default(),
                    &keyed,
                    |i| scenario_for(comps[pending[i]], arm, cfg),
                    cache,
                );
                out.fork_warmup_saved += grid.fork_warmup_saved;
                out.events_elided += grid.events_elided;
                out.runs_elided += grid.runs_elided;
                for (i, r) in grid.results.into_iter().enumerate() {
                    shared[pending[i]] = Some(r);
                }

                let samples = &mut out.arms[arm];
                for (g, slot) in shared.iter().enumerate() {
                    let comp = comps[g];
                    let has_adversary = comp
                        .iter()
                        .any(|&kid| TenantKind::ALL[kid as usize].is_adversarial());
                    let r = slot.as_ref().expect("every group resolved");
                    for &host in members[g] {
                        absorb_host_run(
                            samples,
                            comp,
                            has_adversary,
                            solo,
                            arm,
                            r,
                            &mut steal_frac[host],
                        );
                        carry[host][arm] = Some(r.clone());
                    }
                }
            } else {
                let make = |g: usize| scenario_for(comps[g], arm, cfg);
                let (grouped, saved) = if cfg.share_warmup {
                    run_forked_grid(cfg.jobs, cfg.warmup, &SystemConfig::default(), &sizes, make)
                } else {
                    // Same fan-out shape, every host from scratch.
                    // Branches are bit-identical to the forked path by
                    // the snapshot determinism contract.
                    let owner: Vec<usize> = sizes
                        .iter()
                        .enumerate()
                        .flat_map(|(g, &n)| std::iter::repeat_n(g, n))
                        .collect();
                    let flat =
                        parallel::ordered_map(cfg.jobs, owner.len(), |i| make(owner[i]).run());
                    let mut grouped: Vec<Vec<_>> = sizes.iter().map(|_| Vec::new()).collect();
                    for (i, r) in flat.into_iter().enumerate() {
                        grouped[owner[i]].push(r);
                    }
                    (grouped, 0)
                };
                out.fork_warmup_saved += saved;

                let samples = &mut out.arms[arm];
                for (g, branch_results) in grouped.iter().enumerate() {
                    let comp = comps[g];
                    let has_adversary = comp
                        .iter()
                        .any(|&kid| TenantKind::ALL[kid as usize].is_adversarial());
                    for (&host, r) in members[g].iter().zip(branch_results) {
                        absorb_host_run(
                            samples,
                            comp,
                            has_adversary,
                            solo,
                            arm,
                            r,
                            &mut steal_frac[host],
                        );
                    }
                }
            }
        }

        for (h, &frac) in steal_frac.iter().enumerate() {
            // Empty hosts decay toward zero; occupied hosts blend in the
            // fresh observation.
            index.set_steal(h, 0.5 * index.steal(h) + 0.5 * frac);
        }
        // Next epoch's churn defines dirtiness afresh: every host that
        // ran this epoch now has a current carry for both arms.
        dirty.fill(false);
    }
    out
}

/// p50/p95/p99 + mean of a sample set (percentiles are NaN when empty —
/// rendered as `—` — while the mean is 0).
fn dist(samples: &[f64]) -> (f64, f64, f64, f64) {
    (
        percentile(samples, 50.0),
        percentile(samples, 95.0),
        percentile(samples, 99.0),
        Summary::of(samples).mean,
    )
}

/// Asserts the fleet degradation contract for one cell.
fn assert_cell_contract(label: &str, arms: &[ArmSamples; 2]) {
    // The contract compares percentiles, which are NaN over an empty
    // sample (and every NaN comparison would trip the asserts below with
    // a misleading message) — demand the samples exist first.
    assert!(
        !arms[0].honest.is_empty() && !arms[1].honest.is_empty(),
        "cell {label} produced no honest-tenant samples; \
         the degradation contract is vacuous"
    );
    let (_, van_p95, _, van_mean) = dist(&arms[0].honest);
    let (_, irs_p95, _, irs_mean) = dist(&arms[1].honest);
    assert!(
        irs_p95 <= van_p95 * DEGRADATION_MARGIN,
        "degradation contract violated in cell {label}: \
         IRS p95 honest slowdown {irs_p95:.3} > vanilla {van_p95:.3} × {DEGRADATION_MARGIN}"
    );
    assert!(
        irs_mean <= van_mean * DEGRADATION_MARGIN,
        "degradation contract violated in cell {label}: \
         IRS mean honest slowdown {irs_mean:.3} > vanilla {van_mean:.3} × {DEGRADATION_MARGIN}"
    );
}

/// Table row order (victim/attacker rows appear only in cells that
/// actually placed adversaries).
const SERIES_ORDER: [&str; 14] = [
    "van p50",
    "van p95",
    "van p99",
    "irs p50",
    "irs p95",
    "irs p99",
    "van victim p95",
    "irs victim p95",
    "van attack p50",
    "irs attack p50",
    "van req-trunc",
    "irs req-trunc",
    "irs sa-timeout",
    "rejected",
];

/// Adds one cell's column to the per-mix series set.
fn add_cell_points(series: &mut BTreeMap<&'static str, Series>, col: &str, cell: &CellOutcome) {
    let mut point = |name: &'static str, v: f64| {
        series
            .entry(name)
            .or_insert_with(|| Series::new(name))
            .point(col.to_string(), v);
    };
    let (van_p50, van_p95, van_p99, _) = dist(&cell.arms[0].honest);
    let (irs_p50, irs_p95, irs_p99, _) = dist(&cell.arms[1].honest);
    point("van p50", van_p50);
    point("van p95", van_p95);
    point("van p99", van_p99);
    point("irs p50", irs_p50);
    point("irs p95", irs_p95);
    point("irs p99", irs_p99);
    if !cell.arms[0].victim.is_empty() || !cell.arms[1].victim.is_empty() {
        point("van victim p95", percentile(&cell.arms[0].victim, 95.0));
        point("irs victim p95", percentile(&cell.arms[1].victim, 95.0));
        point("van attack p50", percentile(&cell.arms[0].attacker, 50.0));
        point("irs attack p50", percentile(&cell.arms[1].attacker, 50.0));
    }
    point("van req-trunc", cell.arms[0].requests_truncated as f64);
    point("irs req-trunc", cell.arms[1].requests_truncated as f64);
    point("irs sa-timeout", cell.arms[1].sa_timeouts as f64);
    point("rejected", cell.rejected as f64);
}

/// Runs the whole campaign and assembles the SLO tables.
///
/// # Panics
///
/// Panics when `spec.assert_contract` is set and any cell violates the
/// fleet degradation contract (that's the point).
pub fn run_campaign(spec: &CampaignSpec) -> FleetReport {
    assert!(!spec.policies.is_empty() && !spec.mixes.is_empty());
    let cfg = &spec.fleet;
    let solo = solo_rates(cfg);
    // One cache for the whole campaign: compositions repeat across
    // epochs, arms, *and* cells (the scenario seed ignores policy, mix,
    // and overcommit), so cross-cell reuse is sound and frequent.
    let mut cache = ForkCache::new(cfg.cache_bytes);
    let mut report = FleetReport {
        tables: Vec::new(),
        fork_warmup_saved: 0,
        events_elided: 0,
        events: 0,
        host_runs: 0,
        runs_elided: 0,
        hosts_carried: 0,
        tenants_placed: 0,
        tenants_rejected: 0,
        cache: ForkCacheStats::default(),
        accounting: Table::new(
            "Fleet incremental accounting — logical vs executed simulation volume",
        ),
    };
    /// Logical-vs-executed totals for one accounting column.
    #[derive(Default)]
    struct ColTotals {
        runs: u64,
        runs_elided: u64,
        carried: u64,
        events: u64,
        warmup_saved: u64,
        events_elided: u64,
    }
    let mut acct_cols: Vec<(String, ColTotals)> = Vec::new();
    let absorb = |report: &mut FleetReport, col: &mut ColTotals, cell: &CellOutcome| {
        let events = cell.arms.iter().map(|a| a.events).sum::<u64>();
        let runs = cell.arms.iter().map(|a| a.runs).sum::<usize>();
        report.fork_warmup_saved += cell.fork_warmup_saved;
        report.events_elided += cell.events_elided;
        report.events += events;
        report.host_runs += runs;
        report.runs_elided += cell.runs_elided;
        report.hosts_carried += cell.hosts_carried;
        report.tenants_placed += cell.placed;
        report.tenants_rejected += cell.rejected;
        col.runs += runs as u64;
        col.runs_elided += cell.runs_elided;
        col.carried += cell.hosts_carried;
        col.events += events;
        col.warmup_saved += cell.fork_warmup_saved;
        col.events_elided += cell.events_elided;
    };

    for mix in &spec.mixes {
        let mut series: BTreeMap<&'static str, Series> = BTreeMap::new();
        let mut col = ColTotals::default();
        for policy in &spec.policies {
            let cell = run_cell(cfg, *policy, mix, &solo, &mut cache);
            if spec.assert_contract {
                assert_cell_contract(&format!("{}/{}", policy.label(), mix.name), &cell.arms);
            }
            add_cell_points(&mut series, policy.label(), &cell);
            absorb(&mut report, &mut col, &cell);
        }
        acct_cols.push((mix.name.to_string(), col));
        let mut table = Table::new(format!(
            "Fleet SLO — honest-tenant slowdown vs solo ({} mix, {} hosts, oc {:.2}, {} epochs)",
            mix.name, cfg.hosts, cfg.overcommit, cfg.epochs
        ));
        for name in SERIES_ORDER {
            if let Some(s) = series.remove(name) {
                table.add(s);
            }
        }
        report.tables.push(table);
    }

    if !spec.overcommit_sweep.is_empty() {
        let policy = spec.policies[0];
        let mix = spec.mixes[spec.mixes.len() - 1];
        let mut table = Table::new(format!(
            "Fleet SLO vs overcommit ({} policy, {} mix, {} hosts)",
            policy.label(),
            mix.name,
            cfg.hosts
        ));
        let mut series: BTreeMap<&'static str, Series> = BTreeMap::new();
        let mut col = ColTotals::default();
        for &oc in &spec.overcommit_sweep {
            let cell_cfg = FleetConfig {
                overcommit: oc,
                ..cfg.clone()
            };
            // The scenario seed ignores overcommit (it only moves
            // placement capacity), so the sweep shares the same cache.
            let cell = run_cell(&cell_cfg, policy, &mix, &solo, &mut cache);
            if spec.assert_contract {
                assert_cell_contract(&format!("{}/{}/oc{oc:.2}", policy.label(), mix.name), &cell.arms);
            }
            add_cell_points(&mut series, &format!("oc {oc:.2}"), &cell);
            absorb(&mut report, &mut col, &cell);
        }
        acct_cols.push(("oc sweep".to_string(), col));
        for name in SERIES_ORDER {
            if let Some(s) = series.remove(name) {
                table.add(s);
            }
        }
        report.tables.push(table);
    }

    type AcctRow = (&'static str, fn(&ColTotals) -> f64);
    const ACCT_ROWS: [AcctRow; 8] = [
        ("host runs", |c| c.runs as f64),
        ("runs executed", |c| (c.runs - c.runs_elided) as f64),
        ("runs elided", |c| c.runs_elided as f64),
        ("hosts carried", |c| c.carried as f64),
        ("events (logical)", |c| c.events as f64),
        ("events executed", |c| {
            (c.events - c.warmup_saved - c.events_elided) as f64
        }),
        ("warmup saved", |c| c.warmup_saved as f64),
        ("events elided", |c| c.events_elided as f64),
    ];
    for (name, project) in ACCT_ROWS {
        let mut s = Series::new(name);
        for (col, totals) in &acct_cols {
            s.point(col.clone(), project(totals));
        }
        report.accounting.add(s);
    }
    report.cache = cache.stats();

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_caps_and_guards() {
        assert_eq!(slowdown(0.0, 1.0), 1.0);
        assert_eq!(slowdown(1e9, 0.0), SLOWDOWN_CAP);
        assert!((slowdown(2.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comp_seed_depends_on_every_coordinate() {
        let a = comp_seed(1, 0, &[0, 1]);
        assert_ne!(a, comp_seed(2, 0, &[0, 1]));
        assert_ne!(a, comp_seed(1, 1, &[0, 1]));
        assert_ne!(a, comp_seed(1, 0, &[1, 1]));
    }

    #[test]
    fn capacity_rounds_from_overcommit() {
        let cfg = FleetConfig {
            host_pcpus: 4,
            overcommit: 1.5,
            ..FleetConfig::default()
        };
        assert_eq!(cfg.capacity_vcpus(), 6);
    }
}
