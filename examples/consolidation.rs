//! Consolidating two real applications (the §5.4 setup): UA in the
//! foreground, LU repeating forever in the background, sharing four pCPUs
//! pairwise. Reports per-VM outcomes and the system-wide weighted speedup.
//!
//! Run with: `cargo run --release --example consolidation`

use irs_sched::{Scenario, Strategy};

fn run(strategy: Strategy, seed: u64) -> (f64, f64, f64) {
    let r = Scenario::real_interference("UA", "LU", 2, strategy, seed).run();
    let fg = r.measured().makespan_ms();
    let bg_rate = r.vms[1].work_rate(r.elapsed);
    let fg_cpu = r.measured().cpu_time.as_secs_f64() / r.elapsed.as_secs_f64();
    (fg, bg_rate, fg_cpu)
}

fn main() {
    println!("UA (foreground, spinning) + LU (background, repeating), 2 threads each\n");
    let seeds = 3u64;
    let mut base = (0.0, 0.0);
    for strategy in [Strategy::Vanilla, Strategy::Ple, Strategy::RelaxedCo, Strategy::Irs] {
        let mut fg = 0.0;
        let mut bg = 0.0;
        let mut cpu = 0.0;
        for seed in 1..=seeds {
            let (f, b, c) = run(strategy, seed);
            fg += f / seeds as f64;
            bg += b / seeds as f64;
            cpu += c / seeds as f64;
        }
        if strategy == Strategy::Vanilla {
            base = (fg, bg);
        }
        let fg_speedup = base.0 / fg;
        let bg_speedup = bg / base.1;
        let weighted = (fg_speedup + bg_speedup) / 2.0 * 100.0;
        println!(
            "{:<11} UA {fg:7.0} ms (speedup {fg_speedup:5.2}) | LU rate speedup {bg_speedup:5.2} | \
             weighted {weighted:6.1}% | UA uses {:.2} pCPUs",
            strategy.to_string(),
            cpu * 4.0
        );
    }
    println!(
        "\nWeighted speedup averages the foreground and background speedups\n\
         (100% = vanilla parity). IRS lifts the foreground without starving\n\
         the background — the paper's fairness claim (§5.4)."
    );
}
