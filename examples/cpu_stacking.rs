//! The §5.6 CPU-stacking pathology: unpin everything and let the
//! hypervisor's load balancer place vCPUs. Blocking workloads exhibit
//! deceptive idleness, get stacked onto few pCPUs, and crater; IRS keeps
//! vCPUs exhibiting their factual demand.
//!
//! Run with: `cargo run --release --example cpu_stacking`

use irs_sched::metrics::improvement_pct;
use irs_sched::{Scenario, Strategy};

fn unpinned(bench: &str, strategy: Strategy, seed: u64) -> f64 {
    let mut s = Scenario::fig5_style(bench, 4, strategy, seed);
    for vm in &mut s.vms {
        vm.pinning = None;
    }
    s.run().measured().makespan_ms()
}

fn pinned(bench: &str, seed: u64) -> f64 {
    Scenario::fig5_style(bench, 4, Strategy::Vanilla, seed)
        .run()
        .measured()
        .makespan_ms()
}

fn main() {
    println!("4 CPU hogs, everything unpinned (hypervisor balances vCPUs)\n");
    let seeds = 3u64;
    for bench in ["streamcluster", "fluidanimate", "MG", "CG"] {
        let mean = |f: &dyn Fn(u64) -> f64| (1..=seeds).map(f).sum::<f64>() / seeds as f64;
        let pin = mean(&|s| pinned(bench, s));
        let van = mean(&|s| unpinned(bench, Strategy::Vanilla, s));
        println!(
            "{bench}: pinned vanilla {pin:.0} ms -> unpinned vanilla {van:.0} ms \
             ({:.2}x stacking cost)",
            van / pin
        );
        for strategy in [Strategy::Ple, Strategy::RelaxedCo, Strategy::Irs] {
            let ms = mean(&|s| unpinned(bench, strategy, s));
            println!(
                "    {:<11} {ms:7.0} ms  ({:+.1}% vs unpinned vanilla)",
                strategy.to_string(),
                improvement_pct(van, ms)
            );
        }
    }
    println!(
        "\nBlocked vCPUs look idle, so the balancer parks siblings together\n\
         (deceptive idleness). PLE makes blocking workloads idle even more;\n\
         IRS instead keeps every running vCPU loaded with migrated work."
    );
}
