//! Watch lock-holder preemption happen, and watch IRS defuse it.
//!
//! A canneal-like workload hammers one shared mutex. Whenever the
//! hypervisor preempts the vCPU whose current task holds that mutex, every
//! other thread piles up behind it for up to a 30 ms Xen slice. This
//! example counts those LHP/LWP events and shows how IRS changes both the
//! counts and the outcome.
//!
//! Run with: `cargo run --release --example lock_holder_preemption`

use irs_sched::{Scenario, Strategy};

fn main() {
    println!("canneal (fine-grained mutex), 2 CPU hogs, seeds 1-3\n");
    println!(
        "{:<10} {:>12} {:>8} {:>8} {:>10} {:>12}",
        "strategy", "makespan", "LHP", "LWP", "SA sent", "migrations"
    );
    for strategy in [Strategy::Vanilla, Strategy::Ple, Strategy::RelaxedCo, Strategy::Irs] {
        let mut ms = 0.0;
        let mut lhp = 0;
        let mut lwp = 0;
        let mut sa = 0;
        let mut migr = 0;
        let seeds = 3u64;
        for seed in 1..=seeds {
            let r = Scenario::fig5_style("canneal", 2, strategy, seed).run();
            let m = r.measured();
            ms += m.makespan_ms();
            lhp += m.lhp;
            lwp += m.lwp;
            sa += r.hv.sa_sent;
            migr += m.guest.sa_migrations;
        }
        println!(
            "{:<10} {:>9.0} ms {:>8} {:>8} {:>10} {:>12}",
            strategy.to_string(),
            ms / seeds as f64,
            lhp / seeds,
            lwp / seeds,
            sa / seeds,
            migr / seeds
        );
    }
    println!(
        "\nLHP = the preempted vCPU's current task held the shared mutex;\n\
         LWP = it was first in line for it. Under IRS the context switcher\n\
         pulls that task off before the preemption lands, so the counters\n\
         shift from stalls into migrations."
    );
}
