//! Watch the SA protocol on the wire: run a contended IRS scenario with the
//! scheduling trace enabled and print the first full scheduler-activation
//! round — upcall delivery, context switch, acknowledgement, migration —
//! followed by a `System::debug_vm` snapshot of the guest at that moment.
//!
//! Run with: `cargo run --release --example trace_debugging`

use irs_sched::sim::SimTime;
use irs_sched::{Scenario, Strategy, System, SystemConfig};

fn main() {
    let scenario = Scenario::fig5_style("streamcluster", 1, Strategy::Irs, 1);
    let mut sys = System::with_config(
        scenario,
        SystemConfig {
            trace_capacity: 1 << 14,
            ..SystemConfig::default()
        },
    );

    // Run until the first SA round has completed and the migrator moved.
    while sys.guest(0).stats().sa_migrations == 0 {
        assert!(sys.step(), "simulation ended unexpectedly");
        assert!(sys.now() < SimTime::from_secs(5), "no SA round within 5s");
    }
    // A little extra so the consequences are visible too.
    let until = sys.now() + SimTime::from_millis(2);
    while sys.now() < until {
        sys.step();
    }

    // Print the window around the SA round.
    let dump = sys.trace().dump();
    let lines: Vec<&str> = dump.lines().collect();
    let first_sa = lines
        .iter()
        .position(|l| l.contains("VIRQ_SA_UPCALL"))
        .expect("the trace contains the upcall");
    let start = first_sa.saturating_sub(6);
    let end = (first_sa + 24).min(lines.len());
    println!("--- trace excerpt around the first scheduler activation ---");
    for line in &lines[start..end] {
        println!("{line}");
    }
    println!("--- {} trace records total ---", lines.len());

    // Cross-layer snapshot of the measured VM right after the SA round:
    // per-vCPU hypervisor runstates, guest-current tasks, and every task's
    // scheduler state — the view to reach for when a run looks stuck.
    println!("--- vm0 snapshot at {} ---", sys.now());
    print!("{}", sys.debug_vm(0));
}
