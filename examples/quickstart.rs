//! Quickstart: reproduce the paper's headline result in one file.
//!
//! A 4-vCPU VM runs streamcluster (barriers every ~25 ms, blocking waits)
//! while a CPU hog contends one of its pCPUs. Lock-holder/waiter preemption
//! makes vanilla Xen/Linux lose a third of the machine; IRS recovers most
//! of it by migrating the critical thread off the preempted vCPU.
//!
//! Run with: `cargo run --release --example quickstart`

use irs_sched::metrics::improvement_pct;
use irs_sched::{Scenario, Strategy};

fn main() {
    println!("streamcluster, 4 vCPUs, 1 CPU hog on pCPU0 — five seeds each\n");

    let seeds = 5u64;
    let mean = |strategy: Strategy| -> f64 {
        (0..seeds)
            .map(|seed| {
                Scenario::fig5_style("streamcluster", 1, strategy, 1 + seed)
                    .run()
                    .measured()
                    .makespan_ms()
            })
            .sum::<f64>()
            / seeds as f64
    };

    // The no-interference reference.
    let solo = (0..seeds)
        .map(|seed| {
            let mut s = Scenario::fig5_style("streamcluster", 1, Strategy::Vanilla, 1 + seed);
            s.vms.truncate(1);
            s.run().measured().makespan_ms()
        })
        .sum::<f64>()
        / seeds as f64;
    println!("  alone                : {solo:7.0} ms");

    let vanilla = mean(Strategy::Vanilla);
    println!(
        "  vanilla Xen/Linux    : {vanilla:7.0} ms   ({:.2}x slowdown)",
        vanilla / solo
    );

    for strategy in [Strategy::Ple, Strategy::RelaxedCo, Strategy::Irs] {
        let ms = mean(strategy);
        println!(
            "  {strategy:<21}: {ms:7.0} ms   ({:+.1}% vs vanilla)",
            improvement_pct(vanilla, ms)
        );
    }

    // Peek inside one IRS run.
    let r = Scenario::fig5_style("streamcluster", 1, Strategy::Irs, 1).run();
    let m = r.measured();
    println!(
        "\nInside one IRS run: {} scheduler activations sent, {} acknowledged, \
         {} timed out;\nthe guest migrator moved {} threads ({} onto idle vCPUs).",
        r.hv.sa_sent, r.hv.sa_acked, r.hv.sa_timeouts, m.guest.sa_migrations, m.guest.sa_idle_targets
    );
}
