//! Server workloads under interference (§5.3): a SPECjbb-like closed loop
//! and an ab-like open loop, vanilla vs IRS. Latency — especially the tail
//! — is where IRS shows up for servers.
//!
//! Run with: `cargo run --release --example server_latency`

use irs_sched::sim::SimTime;
use irs_sched::workloads::presets;
use irs_sched::{Scenario, Strategy, VmScenario};

fn main() {
    let horizon = SimTime::from_secs(10);
    println!("10 s of virtual time per run, one CPU hog on pCPU0\n");

    for (name, open_loop) in [("specjbb (4 warehouses)", false), ("ab (512 workers)", true)] {
        println!("{name}:");
        for strategy in [Strategy::Vanilla, Strategy::Irs] {
            let bundle = if open_loop {
                presets::server::apache_ab(512, 4, 0.6)
            } else {
                presets::server::specjbb(4)
            };
            let r = Scenario::new(4, strategy, 7)
                .vm(VmScenario::new(bundle, 4).pin_one_to_one().measured())
                .vm(VmScenario::new(presets::hog::cpu_hogs(1), 4).pin_one_to_one())
                .horizon(horizon)
                .run();
            let m = r.measured();
            println!(
                "  {:<8} {:>7.0} req/s | mean {:>7.0} us | p95 {:>7.0} us | p99 {:>7.0} us{}",
                strategy.to_string(),
                m.throughput_rps(r.elapsed),
                m.mean_latency_us(),
                m.latency_percentile_us(95.0),
                m.latency_percentile_us(99.0),
                if m.dropped_requests > 0 {
                    format!(" | {} dropped", m.dropped_requests)
                } else {
                    String::new()
                }
            );
        }
        println!();
    }
    println!(
        "The warehouse thread stuck on the preempted vCPU is what stretches\n\
         the tail; IRS migrates it, so p99 collapses while the mean barely\n\
         moves — matching the paper's \"latency, not throughput\" finding."
    );
}
